// Grid search tests: cartesian grids, CV scoring picks the better
// hyper-parameters on constructed tasks.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/decision_tree.hpp"
#include "ml/grid_search.hpp"

namespace spmvml::ml {
namespace {

TEST(MakeGrid, CartesianProduct) {
  const auto grid = make_grid({{"a", {1.0, 2.0}}, {"b", {10.0, 20.0, 30.0}}});
  EXPECT_EQ(grid.size(), 6u);
  // Every combination appears exactly once.
  int seen = 0;
  for (const auto& p : grid)
    if (p.at("a") == 2.0 && p.at("b") == 30.0) ++seen;
  EXPECT_EQ(seen, 1);
}

TEST(MakeGrid, EmptyAxisThrows) {
  EXPECT_THROW(make_grid({{"a", {}}}), Error);
}

TEST(GridSearch, PrefersDeeperTreeOnXor) {
  // XOR needs depth >= 2; grid must discover that depth 1 is inadequate.
  Dataset d;
  Rng rng(1);
  for (int i = 0; i < 400; ++i) {
    const double a = rng.uniform(), b = rng.uniform();
    d.x.push_back({a, b});
    d.labels.push_back((a > 0.5) != (b > 0.5) ? 1 : 0);
  }
  const auto grid = make_grid({{"max_depth", {1.0, 4.0}}});
  const auto result = grid_search_classifier(
      [](const ParamPoint& p) -> ClassifierPtr {
        TreeParams tp;
        tp.max_depth = static_cast<int>(p.at("max_depth"));
        return std::make_unique<DecisionTreeClassifier>(tp);
      },
      grid, d, 4, 9);
  EXPECT_DOUBLE_EQ(result.best_params.at("max_depth"), 4.0);
  EXPECT_GT(result.best_score, 0.8);
}

TEST(GridSearch, RegressorPicksUsefulDepth) {
  Dataset d;
  Rng rng(2);
  for (int i = 0; i < 300; ++i) {
    const double v = rng.uniform(0.0, 10.0);
    d.x.push_back({v});
    d.targets.push_back(v * v + 1.0);
  }
  const auto grid = make_grid({{"max_depth", {1.0, 8.0}}});
  const auto result = grid_search_regressor(
      [](const ParamPoint& p) -> RegressorPtr {
        TreeParams tp;
        tp.max_depth = static_cast<int>(p.at("max_depth"));
        return std::make_unique<DecisionTreeRegressor>(tp);
      },
      grid, d, 3, 10);
  EXPECT_DOUBLE_EQ(result.best_params.at("max_depth"), 8.0);
}

TEST(GridSearch, EmptyGridThrows) {
  Dataset d;
  d.x = {{1.0}};
  d.labels = {0};
  EXPECT_THROW(grid_search_classifier(
                   [](const ParamPoint&) -> ClassifierPtr { return nullptr; },
                   {}, d, 2, 0),
               Error);
}

}  // namespace
}  // namespace spmvml::ml
