// Tuning module tests: paper grids, classifier instantiation with
// explicit params, end-to-end tune on a small learnable problem.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/tuning.hpp"
#include "ml/metrics.hpp"

namespace spmvml {
namespace {

TEST(Tuning, PaperGridSizesMatchSectionIVD) {
  // XGBoost: 4 x 3 x 2 = 24 points; SVM: 3 x 3 = 9 points.
  EXPECT_EQ(paper_grid(ModelKind::kXgboost).size(), 24u);
  EXPECT_EQ(paper_grid(ModelKind::kSvm).size(), 9u);
}

TEST(Tuning, FastModeTruncatesAxes) {
  EXPECT_LE(paper_grid(ModelKind::kXgboost, true).size(), 8u);
  EXPECT_LE(paper_grid(ModelKind::kSvm, true).size(), 4u);
}

TEST(Tuning, GridContainsPublishedValues) {
  const auto grid = paper_grid(ModelKind::kXgboost);
  bool found = false;
  for (const auto& p : grid)
    if (p.at("n_estimators") == 500 && p.at("max_depth") == 128 &&
        p.at("learning_rate") == 0.01)
      found = true;
  EXPECT_TRUE(found);
}

TEST(Tuning, MakeClassifierWithAppliesParams) {
  for (int k = 0; k < kNumModelKinds; ++k) {
    const auto kind = static_cast<ModelKind>(k);
    const auto grid = paper_grid(kind, true);
    ASSERT_FALSE(grid.empty());
    auto model = make_classifier_with(kind, grid.front());
    EXPECT_NE(model, nullptr) << model_name(kind);
  }
}

TEST(Tuning, UnknownKeysFallBackToDefaults) {
  ml::ParamPoint p = {{"bogus", 1.0}};
  auto model = make_classifier_with(ModelKind::kXgboost, p);
  EXPECT_NE(model, nullptr);
}

TEST(Tuning, TuneSelectsWorkingConfig) {
  // Simple separable 3-class task; any sensible grid point should win
  // with high CV accuracy.
  ml::Dataset data;
  Rng rng(7);
  for (int i = 0; i < 240; ++i) {
    const int k = i % 3;
    data.x.push_back({static_cast<double>(k) * 2.0 + rng.normal(0.0, 0.4)});
    data.labels.push_back(k);
  }
  const auto result =
      tune_classifier(ModelKind::kDecisionTree, data, 3, 5, true);
  EXPECT_GT(result.best_score, 0.9);
  auto model = make_classifier_with(ModelKind::kDecisionTree,
                                    result.best_params);
  model->fit(data.x, data.labels);
  EXPECT_GT(ml::accuracy(data.labels, model->predict_batch(data.x)), 0.9);
}

}  // namespace
}  // namespace spmvml
