// Dataset utilities: stratified splits, k-fold coverage, scaler behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "ml/dataset.hpp"

namespace spmvml::ml {
namespace {

Dataset toy_dataset(int n) {
  Dataset d;
  for (int i = 0; i < n; ++i) {
    d.x.push_back({static_cast<double>(i), static_cast<double>(i % 3)});
    d.labels.push_back(i % 3);
    d.targets.push_back(static_cast<double>(i) * 0.5);
  }
  return d;
}

TEST(Dataset, SubsetCopiesSelectedRows) {
  const auto d = toy_dataset(10);
  const auto s = d.subset({1, 4, 7});
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.x[1][0], 4.0);
  EXPECT_EQ(s.labels[2], 7 % 3);
  EXPECT_DOUBLE_EQ(s.targets[0], 0.5);
}

TEST(Dataset, SubsetRejectsOutOfRange) {
  const auto d = toy_dataset(3);
  EXPECT_THROW(d.subset({5}), Error);
}

TEST(Dataset, ValidateCatchesRaggedRows) {
  Dataset d;
  d.x = {{1.0, 2.0}, {3.0}};
  EXPECT_THROW(d.validate(), Error);
}

TEST(Split, SizesMatchFraction) {
  // Four strata of 25 each: 20% of every stratum is exactly 5, so the
  // stratified split must produce exactly 20/80.
  Dataset d;
  for (int i = 0; i < 100; ++i) {
    d.x.push_back({static_cast<double>(i)});
    d.labels.push_back(i % 4);
  }
  const auto split = train_test_split(d, 0.2, 1);
  EXPECT_EQ(split.test.size(), 20u);
  EXPECT_EQ(split.train.size(), 80u);
}

TEST(Split, IsStratifiedByLabel) {
  Dataset d;
  for (int i = 0; i < 90; ++i) {
    d.x.push_back({static_cast<double>(i)});
    d.labels.push_back(i < 60 ? 0 : 1);  // 2:1 imbalance
  }
  const auto split = train_test_split(d, 0.3, 2);
  int test_zeros = static_cast<int>(
      std::count(split.test.labels.begin(), split.test.labels.end(), 0));
  EXPECT_EQ(test_zeros, 18);  // 30% of 60
  EXPECT_EQ(split.test.size(), 27u);
}

TEST(Split, DeterministicPerSeedAndDisjoint) {
  const auto d = toy_dataset(50);
  const auto a = train_test_split(d, 0.2, 7);
  const auto b = train_test_split(d, 0.2, 7);
  EXPECT_EQ(a.test.x, b.test.x);
  // Disjointness: every original row appears exactly once.
  std::multiset<double> seen;
  for (const auto& row : a.train.x) seen.insert(row[0]);
  for (const auto& row : a.test.x) seen.insert(row[0]);
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(std::set<double>(seen.begin(), seen.end()).size(), 50u);
}

TEST(KFold, CoversEverySampleExactlyOnce) {
  const auto d = toy_dataset(53);
  const auto folds = k_folds(d, 5, 3);
  ASSERT_EQ(folds.size(), 5u);
  std::set<std::size_t> tested;
  for (const auto& [train, test] : folds) {
    EXPECT_EQ(train.size() + test.size(), 53u);
    for (std::size_t i : test) {
      EXPECT_TRUE(tested.insert(i).second) << "sample tested twice";
    }
    // Train and test disjoint.
    for (std::size_t i : test)
      EXPECT_EQ(std::find(train.begin(), train.end(), i), train.end());
  }
  EXPECT_EQ(tested.size(), 53u);
}

TEST(KFold, RejectsSingleFold) {
  const auto d = toy_dataset(10);
  EXPECT_THROW(k_folds(d, 1, 0), Error);
}

TEST(Scaler, ZeroMeanUnitVariance) {
  Matrix x = {{1.0, 10.0}, {3.0, 10.0}, {5.0, 10.0}};
  StandardScaler scaler;
  scaler.fit(x);
  const auto z = scaler.transform(x);
  double mean0 = (z[0][0] + z[1][0] + z[2][0]) / 3.0;
  EXPECT_NEAR(mean0, 0.0, 1e-12);
  EXPECT_NEAR(z[2][0] - z[0][0], 2.0 * std::sqrt(3.0 / 2.0), 1e-9);
  // Constant column: std clamped to 1, values become 0.
  EXPECT_DOUBLE_EQ(z[0][1], 0.0);
}

TEST(Scaler, TransformBeforeFitThrows) {
  StandardScaler scaler;
  EXPECT_THROW(scaler.transform(std::vector<double>{1.0}), Error);
}

TEST(Scaler, DimensionMismatchThrows) {
  StandardScaler scaler;
  scaler.fit({{1.0, 2.0}});
  EXPECT_THROW(scaler.transform(std::vector<double>{1.0}), Error);
}

}  // namespace
}  // namespace spmvml::ml
