// Circuit-breaker state-machine tests. Time is injected as explicit
// steady_clock time_points, so every transition — including the open →
// half-open cooldown — is exercised without sleeping. (The tsan job
// runs these too: the breaker is the serving path's contention point.)
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "serve/breaker.hpp"

namespace spmvml::serve {
namespace {

using Clock = CircuitBreaker::Clock;

Clock::time_point t0() {
  static const Clock::time_point t = Clock::now();
  return t;
}

Clock::time_point at_ms(double ms) {
  return t0() + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(ms));
}

BreakerConfig small_cfg() {
  BreakerConfig cfg;
  cfg.window = 4;
  cfg.error_threshold = 0.5;
  cfg.open_cooldown_ms = 100.0;
  cfg.half_open_probes = 2;
  return cfg;
}

TEST(Breaker, StartsClosedAndAllows) {
  CircuitBreaker b("t_start", small_cfg());
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  EXPECT_TRUE(b.allow(at_ms(0)));
  EXPECT_EQ(b.trips(), 0u);
}

TEST(Breaker, SuccessesNeverTrip) {
  CircuitBreaker b("t_ok", small_cfg());
  for (int i = 0; i < 64; ++i) b.record(true, 1.0, at_ms(i));
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  EXPECT_EQ(b.trips(), 0u);
}

TEST(Breaker, ErrorRateOverThresholdTrips) {
  CircuitBreaker b("t_err", small_cfg());
  // Window 4, threshold 0.5: two failures in four outcomes trip it.
  b.record(true, 1.0, at_ms(0));
  b.record(false, 1.0, at_ms(1));
  b.record(true, 1.0, at_ms(2));
  EXPECT_EQ(b.state(), BreakerState::kClosed);  // window not full yet
  b.record(false, 1.0, at_ms(3));
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_EQ(b.trips(), 1u);
  EXPECT_FALSE(b.allow(at_ms(4)));
}

TEST(Breaker, ErrorRateUnderThresholdTumblesWindow) {
  CircuitBreaker b("t_tumble", small_cfg());
  // One failure per full window stays under 0.5 forever.
  for (int w = 0; w < 8; ++w) {
    b.record(false, 1.0, at_ms(w * 4));
    for (int i = 1; i < 4; ++i) b.record(true, 1.0, at_ms(w * 4 + i));
  }
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  EXPECT_EQ(b.trips(), 0u);
}

TEST(Breaker, CooldownPromotesToHalfOpenViaAllow) {
  CircuitBreaker b("t_cool", small_cfg());
  for (int i = 0; i < 4; ++i) b.record(false, 1.0, at_ms(i));
  ASSERT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_FALSE(b.allow(at_ms(50)));  // cooldown (100 ms) not elapsed
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_TRUE(b.allow(at_ms(103 + 4)));  // opened at t=3, +100 ms passed
  EXPECT_EQ(b.state(), BreakerState::kHalfOpen);
}

TEST(Breaker, HalfOpenProbeSuccessesClose) {
  CircuitBreaker b("t_close", small_cfg());
  for (int i = 0; i < 4; ++i) b.record(false, 1.0, at_ms(i));
  ASSERT_TRUE(b.allow(at_ms(200)));
  ASSERT_EQ(b.state(), BreakerState::kHalfOpen);
  b.record(true, 1.0, at_ms(201));
  EXPECT_EQ(b.state(), BreakerState::kHalfOpen);  // 1 of 2 probes
  b.record(true, 1.0, at_ms(202));
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  EXPECT_TRUE(b.allow(at_ms(203)));
  EXPECT_EQ(b.trips(), 1u);
}

TEST(Breaker, HalfOpenProbeFailureReopensAndRestartsCooldown) {
  CircuitBreaker b("t_reopen", small_cfg());
  for (int i = 0; i < 4; ++i) b.record(false, 1.0, at_ms(i));
  ASSERT_TRUE(b.allow(at_ms(200)));
  b.record(true, 1.0, at_ms(201));   // one good probe...
  b.record(false, 1.0, at_ms(202));  // ...then a failure: reopen
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_EQ(b.trips(), 2u);
  EXPECT_FALSE(b.allow(at_ms(250)));  // cooldown restarted at t=202
  EXPECT_TRUE(b.allow(at_ms(310)));
  EXPECT_EQ(b.state(), BreakerState::kHalfOpen);
}

TEST(Breaker, LatencyEwmaTripRequiresWarmup) {
  BreakerConfig cfg = small_cfg();
  cfg.latency_threshold_ms = 10.0;
  cfg.ewma_alpha = 1.0;  // EWMA == last sample: deterministic
  cfg.error_threshold = 1.0;
  CircuitBreaker b("t_lat", cfg);
  // Slow but successful outcomes; nothing trips before `window` samples.
  b.record(true, 50.0, at_ms(0));
  b.record(true, 50.0, at_ms(1));
  b.record(true, 50.0, at_ms(2));
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  b.record(true, 50.0, at_ms(3));  // 4th sample: warmed up, EWMA 50 > 10
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_EQ(b.trips(), 1u);
  EXPECT_GT(b.latency_ewma_ms(), 10.0);
}

TEST(Breaker, LatencyTripDisabledByDefault) {
  CircuitBreaker b("t_nolat", small_cfg());  // latency_threshold_ms = 0
  for (int i = 0; i < 32; ++i) b.record(true, 1e6, at_ms(i));
  EXPECT_EQ(b.state(), BreakerState::kClosed);
}

TEST(Breaker, NegativeLatencyMeansNoSample) {
  CircuitBreaker b("t_neg", small_cfg());
  b.record(true, 25.0, at_ms(0));
  b.record(true, -1.0, at_ms(1));  // outcome only, no latency reading
  EXPECT_DOUBLE_EQ(b.latency_ewma_ms(), 25.0);
}

TEST(Breaker, OutcomesWhileOpenAreIgnored) {
  CircuitBreaker b("t_stale", small_cfg());
  for (int i = 0; i < 4; ++i) b.record(false, 1.0, at_ms(i));
  ASSERT_EQ(b.state(), BreakerState::kOpen);
  // Stale in-flight outcomes landing after the trip don't double-trip
  // or corrupt the next half-open probe accounting.
  b.record(false, 1.0, at_ms(5));
  b.record(true, 1.0, at_ms(6));
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_EQ(b.trips(), 1u);
}

TEST(Breaker, SanitizesDegenerateConfig) {
  BreakerConfig cfg;
  cfg.window = 0;
  cfg.half_open_probes = 0;
  cfg.open_cooldown_ms = -5.0;
  cfg.error_threshold = 1.0;
  CircuitBreaker b("t_sane", cfg);
  b.record(false, 1.0, at_ms(0));  // window clamped to 1: trips at once
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_TRUE(b.allow(at_ms(0)));  // cooldown clamped to 0
  b.record(true, 1.0, at_ms(1));   // probes clamped to 1: closes
  EXPECT_EQ(b.state(), BreakerState::kClosed);
}

TEST(Breaker, ConcurrentRecordAndAllowAreSafe) {
  // tsan coverage: hammer one breaker from several threads through
  // full trip/cooldown/close cycles.
  BreakerConfig cfg = small_cfg();
  cfg.open_cooldown_ms = 0.1;
  CircuitBreaker b("t_race", cfg);
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&b, w] {
      for (int i = 0; i < 500; ++i) {
        const auto now = Clock::now();
        if (b.allow(now)) b.record((i + w) % 3 != 0, 0.5, now);
        b.state();
        b.latency_ewma_ms();
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_GE(b.trips(), 0u);  // no crash / no race is the assertion
}

}  // namespace
}  // namespace spmvml::serve
