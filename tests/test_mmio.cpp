// Matrix Market I/O tests: round trips, symmetric expansion, pattern
// files, malformed input rejection.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "sparse/mmio.hpp"
#include "sparse/sell.hpp"
#include "sparse/spmv.hpp"

namespace spmvml {
namespace {

TEST(Mmio, ReadsGeneralRealCoordinate) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 4 3\n"
      "1 1 1.5\n"
      "2 3 -2.0\n"
      "3 4 0.25\n");
  const auto m = read_matrix_market(in);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_DOUBLE_EQ(m.values()[0], 1.5);
  EXPECT_EQ(m.col_idx()[1], 2);  // 1-based 3 -> 0-based 2
}

TEST(Mmio, ExpandsSymmetric) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 3\n"
      "1 1 2.0\n"
      "2 1 5.0\n"
      "3 2 7.0\n");
  const auto m = read_matrix_market(in);
  // Diagonal stays single; off-diagonals mirrored: 1 + 2*2 = 5 entries.
  EXPECT_EQ(m.nnz(), 5);
  // (0,1) must now exist with value 5.
  bool found = false;
  for (index_t p = m.row_ptr()[0]; p < m.row_ptr()[1]; ++p)
    if (m.col_idx()[p] == 1 && m.values()[p] == 5.0) found = true;
  EXPECT_TRUE(found);
}

TEST(Mmio, PatternEntriesGetUnitValues) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 1\n"
      "2 2\n");
  const auto m = read_matrix_market(in);
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_DOUBLE_EQ(m.values()[0], 1.0);
}

TEST(Mmio, IntegerFieldAccepted) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate integer general\n"
      "2 2 1\n"
      "2 1 7\n");
  const auto m = read_matrix_market(in);
  EXPECT_DOUBLE_EQ(m.values()[0], 7.0);
}

TEST(Mmio, RoundTripPreservesMatrix) {
  std::vector<Triplet<double>> t = {
      {0, 0, 1.0}, {0, 3, 2.0}, {2, 1, -3.5}, {4, 4, 0.125}};
  const auto m = Csr<double>::from_triplets(5, 5, t);
  std::ostringstream out;
  write_matrix_market(out, m);
  std::istringstream in(out.str());
  const auto back = read_matrix_market(in);
  EXPECT_EQ(m, back);
}

TEST(Mmio, RejectsMissingBanner) {
  std::istringstream in("not a matrix market file\n1 1 0\n");
  EXPECT_THROW(read_matrix_market(in), Error);
}

TEST(Mmio, RejectsComplexField) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate complex general\n"
      "1 1 1\n"
      "1 1 1.0 0.0\n");
  EXPECT_THROW(read_matrix_market(in), Error);
}

TEST(Mmio, RejectsArrayFormat) {
  std::istringstream in(
      "%%MatrixMarket matrix array real general\n"
      "1 1\n"
      "1.0\n");
  EXPECT_THROW(read_matrix_market(in), Error);
}

TEST(Mmio, RejectsTruncatedEntries) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 3\n"
      "1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(in), Error);
}

TEST(Mmio, RejectsOutOfRangeIndices) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "3 1 1.0\n");
  EXPECT_THROW(read_matrix_market(in), Error);
}

TEST(Mmio, FileRoundTrip) {
  const auto path = testing::TempDir() + "/spmvml_mmio_test.mtx";
  const auto m = Csr<double>::from_triplets(3, 3, {{0, 0, 1.0}, {2, 2, 2.0}});
  write_matrix_market(path, m);
  const auto back = read_matrix_market(path);
  EXPECT_EQ(m, back);
}

TEST(Mmio, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market("/nonexistent/path.mtx"), Error);
}

TEST(Mmio, MissingFileErrorIsIoCategory) {
  try {
    read_matrix_market("/nonexistent/path.mtx");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kIo);
  }
}

TEST(Mmio, ToleratesCrlfLineEndings) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\r\n"
      "% dos-style comment\r\n"
      "2 2 2\r\n"
      "1 1 1.5\r\n"
      "2 2 -2.0\r\n");
  const auto m = read_matrix_market(in);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_DOUBLE_EQ(m.values()[0], 1.5);
  EXPECT_DOUBLE_EQ(m.values()[1], -2.0);
}

TEST(Mmio, ToleratesBlankLinesBeforeDimensions) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "\n"
      "% comment after a blank line\n"
      "   \n"
      "2 2 1\n"
      "1 2 3.0\n");
  const auto m = read_matrix_market(in);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_DOUBLE_EQ(m.values()[0], 3.0);
}

TEST(Mmio, ParseErrorsCarryLineNumberAndCategory) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% comment\n"
      "2 2 2\n"
      "1 1 1.0\n"
      "2 bogus 1.0\n");
  try {
    read_matrix_market(in);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kParse);
    EXPECT_NE(std::string(e.what()).find("line 5"), std::string::npos)
        << e.what();
  }
}

TEST(Mmio, BadDimensionsReportLineNumber) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "0 -3 1\n");
  try {
    read_matrix_market(in);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kParse);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

// --- Fuzz corpus -----------------------------------------------------------
// Malformed inputs collected from the failure modes a hostile .mtx can
// hit: every one must raise the PR 1 error taxonomy (kParse), never
// crash, never loop. Table-driven so new crashers found later get one
// line each.

struct FuzzCase {
  const char* name;
  const char* text;
};

class MmioFuzzCorpus : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(MmioFuzzCorpus, RejectsWithParseError) {
  std::istringstream in(GetParam().text);
  try {
    read_matrix_market(in);
    FAIL() << GetParam().name << ": expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kParse) << GetParam().name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, MmioFuzzCorpus,
    ::testing::Values(
        FuzzCase{"empty_input", ""},
        FuzzCase{"banner_only", "%%MatrixMarket matrix coordinate real general\n"},
        FuzzCase{"truncated_banner", "%%MatrixMarket matrix coordinate\n2 2 1\n1 1 1.0\n"},
        FuzzCase{"wrong_object",
                 "%%MatrixMarket vector coordinate real general\n1 1 1\n1 1 1.0\n"},
        FuzzCase{"unknown_symmetry",
                 "%%MatrixMarket matrix coordinate real diagonal\n1 1 1\n1 1 1.0\n"},
        FuzzCase{"banner_case_garbage", "%%matrixmarket spam eggs\n"},
        FuzzCase{"comments_only",
                 "%%MatrixMarket matrix coordinate real general\n% a\n% b\n"},
        FuzzCase{"dims_not_numbers",
                 "%%MatrixMarket matrix coordinate real general\nfoo bar baz\n"},
        FuzzCase{"dims_two_fields",
                 "%%MatrixMarket matrix coordinate real general\n3 3\n"},
        FuzzCase{"negative_nnz",
                 "%%MatrixMarket matrix coordinate real general\n2 2 -4\n"},
        FuzzCase{"huge_nnz_truncated",
                 "%%MatrixMarket matrix coordinate real general\n2 2 1000000\n1 1 1.0\n"},
        FuzzCase{"entry_missing_value",
                 "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n"},
        FuzzCase{"entry_value_not_number",
                 "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 x\n"},
        FuzzCase{"zero_based_index",
                 "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n"},
        FuzzCase{"symmetric_entry_above_diagonal",
                 "%%MatrixMarket matrix coordinate real symmetric\n3 3 1\n1 3 2.0\n"},
        FuzzCase{"symmetric_nonsquare",
                 "%%MatrixMarket matrix coordinate real symmetric\n2 3 1\n1 1 1.0\n"},
        FuzzCase{"entry_cut_short_by_nul",
                 "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 \0 1.0\n"},
        FuzzCase{"value_row_in_pattern_file_short",
                 "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1\n2 2\n"}),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      return info.param.name;
    });

TEST(MmioFuzz, EveryPrefixOfAValidFileParsesOrThrows) {
  // Deterministic truncation fuzz: feeding every prefix of a valid file
  // must either produce a matrix or raise Error — never crash and never
  // read past the buffer. Catches "trusted the declared nnz" bugs.
  const std::string valid =
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "% comment line\n"
      "4 4 5\n"
      "1 1 1.5\n"
      "2 1 -2.0\n"
      "3 3 0.25\n"
      "4 2 8.0\n"
      "4 4 -0.5\n";
  int parsed = 0, rejected = 0;
  for (std::size_t cut = 0; cut <= valid.size(); ++cut) {
    std::istringstream in(valid.substr(0, cut));
    try {
      read_matrix_market(in);
      ++parsed;
    } catch (const Error&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
  EXPECT_GT(parsed, 0);  // at least the full file parses
}

TEST(MmioFuzz, SingleByteCorruptionNeverCrashes) {
  // Flip each position of a valid file to hostile bytes; the reader must
  // parse (corruption in a comment) or throw Error — nothing else.
  const std::string valid =
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 3\n"
      "1 1 1.0\n"
      "2 2 2.0\n"
      "3 3 3.0\n";
  const char hostile[] = {'\0', '%', '-', '9', 'e', ' ', '\n'};
  for (std::size_t pos = 0; pos < valid.size(); ++pos) {
    for (const char c : hostile) {
      std::string mutated = valid;
      mutated[pos] = c;
      std::istringstream in(mutated);
      try {
        read_matrix_market(in);
      } catch (const Error&) {
      }
    }
  }
  SUCCEED();  // surviving the corpus without a crash is the assertion
}

TEST(MmioFuzz, SurvivorsConvertToSellSafely) {
  // Every mutation of the single-byte-corruption corpus that still parses
  // is a hostile-but-valid matrix; each must survive SELL conversion at
  // several (C, sigma) tunings — validate() clean, SpMV agreeing with the
  // CSR reference — exactly like the reserve-cap hardening promises.
  const std::string valid =
      "%%MatrixMarket matrix coordinate real general\n"
      "4 5 5\n"
      "1 1 1.0\n"
      "2 4 2.0\n"
      "3 2 3.0\n"
      "4 5 4.0\n"
      "4 1 -1.0\n";
  const char hostile[] = {'\0', '%', '-', '9', 'e', ' ', '\n'};
  int survivors = 0;
  for (std::size_t pos = 0; pos < valid.size(); ++pos) {
    for (const char c : hostile) {
      std::string mutated = valid;
      mutated[pos] = c;
      std::istringstream in(mutated);
      Csr<double> m(0, 0, {0}, {}, {});
      try {
        m = read_matrix_market(in);
      } catch (const Error&) {
        continue;
      }
      ++survivors;
      std::vector<double> x(static_cast<std::size_t>(m.cols()), 1.0);
      std::vector<double> expect(static_cast<std::size_t>(m.rows()));
      spmv_reference(m, x, expect);
      for (auto [sc, sigma] : {std::pair<index_t, index_t>{1, 1},
                               {4, 12},
                               {32, 128}}) {
        const auto sell = Sell<double>::from_csr(m, sc, sigma);
        sell.validate();
        ASSERT_EQ(sell.to_csr(), m) << "pos=" << pos << " C=" << sc;
        std::vector<double> y(static_cast<std::size_t>(m.rows()), -1.0);
        sell.spmv(x, y);
        for (index_t r = 0; r < m.rows(); ++r)
          ASSERT_NEAR(y[static_cast<std::size_t>(r)],
                      expect[static_cast<std::size_t>(r)], 1e-12)
              << "pos=" << pos << " C=" << sc;
      }
    }
  }
  EXPECT_GT(survivors, 0);  // the corpus must actually exercise the path
}

TEST(MmioFuzz, DeclaredNnzFarBeyondContentThrowsQuickly) {
  // A header promising 2^31-ish entries over a two-line body must fail
  // on the missing data, not attempt a giant allocation first.
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 2147483646\n"
      "1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(in), Error);
}

}  // namespace
}  // namespace spmvml
