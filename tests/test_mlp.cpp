// MLP tests: classification/regression convergence, target standardisation,
// ensemble averaging, seed determinism.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/metrics.hpp"
#include "ml/mlp.hpp"

namespace spmvml::ml {
namespace {

MlpParams small_net() {
  MlpParams p;
  p.hidden = {16, 8};
  p.epochs = 60;
  return p;
}

TEST(Mlp, ClassifiesBlobs) {
  Matrix x;
  std::vector<int> y;
  Rng rng(1);
  const double cx[3] = {0.0, 4.0, 2.0};
  const double cy[3] = {0.0, 0.0, 3.5};
  for (int i = 0; i < 450; ++i) {
    const int k = i % 3;
    x.push_back({cx[k] + rng.normal(0.0, 0.6), cy[k] + rng.normal(0.0, 0.6)});
    y.push_back(k);
  }
  MlpClassifier mlp(small_net());
  mlp.fit(x, y);
  EXPECT_GT(accuracy(y, mlp.predict_batch(x)), 0.93);
}

TEST(Mlp, SolvesXor) {
  Matrix x;
  std::vector<int> y;
  Rng rng(2);
  for (int i = 0; i < 400; ++i) {
    const double a = rng.uniform(), b = rng.uniform();
    x.push_back({a, b});
    y.push_back((a > 0.5) != (b > 0.5) ? 1 : 0);
  }
  auto p = small_net();
  p.epochs = 150;
  MlpClassifier mlp(p);
  mlp.fit(x, y);
  EXPECT_GT(accuracy(y, mlp.predict_batch(x)), 0.9);
}

TEST(Mlp, ProbabilitiesSumToOne) {
  Matrix x = {{0.0}, {1.0}, {2.0}, {3.0}};
  std::vector<int> y = {0, 0, 1, 1};
  auto p = small_net();
  p.epochs = 20;
  MlpClassifier mlp(p);
  mlp.fit(x, y);
  const auto probs = mlp.predict_proba({1.5});
  double sum = 0.0;
  for (double v : probs) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Mlp, DeterministicForSeed) {
  Matrix x;
  std::vector<int> y;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    x.push_back({rng.uniform(), rng.uniform()});
    y.push_back(i % 2);
  }
  auto p = small_net();
  p.epochs = 10;
  MlpClassifier a(p), b(p);
  a.fit(x, y);
  b.fit(x, y);
  for (const auto& row : x) {
    const auto pa = a.predict_proba(row), pb = b.predict_proba(row);
    for (std::size_t k = 0; k < pa.size(); ++k)
      EXPECT_DOUBLE_EQ(pa[k], pb[k]);
  }
}

TEST(MlpRegressor, FitsLinearMap) {
  Matrix x;
  std::vector<double> y;
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    const double a = rng.uniform(-1.0, 1.0), b = rng.uniform(-1.0, 1.0);
    x.push_back({a, b});
    y.push_back(2.0 * a - b + 0.5);
  }
  auto p = small_net();
  p.epochs = 120;
  MlpRegressor mlp(p);
  mlp.fit(x, y);
  double max_err = 0.0;
  for (std::size_t i = 0; i < 50; ++i)
    max_err = std::max(max_err, std::abs(mlp.predict(x[i]) - y[i]));
  EXPECT_LT(max_err, 0.25);
}

TEST(MlpRegressor, HandlesLargeTargetScaleViaStandardisation) {
  // Targets around 1e6: without internal y-standardisation the net could
  // not move its output there in a few dozen Adam steps.
  Matrix x;
  std::vector<double> y;
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    const double v = rng.uniform(0.0, 1.0);
    x.push_back({v});
    y.push_back(1e6 + 1e5 * v);
  }
  auto p = small_net();
  p.epochs = 100;
  MlpRegressor mlp(p);
  mlp.fit(x, y);
  EXPECT_NEAR(mlp.predict({0.5}), 1.05e6, 2e4);
}

TEST(MlpEnsembleClassifier, AtLeastAsGoodAsTypicalMember) {
  Matrix x;
  std::vector<int> y;
  Rng rng(6);
  for (int i = 0; i < 300; ++i) {
    const int k = i % 2;
    x.push_back({(k == 0 ? -1.0 : 1.0) + rng.normal(0.0, 0.9)});
    y.push_back(k);
  }
  auto p = small_net();
  p.epochs = 30;
  MlpEnsembleClassifier ens(p, 5);
  ens.fit(x, y);
  MlpClassifier single(p);
  single.fit(x, y);
  EXPECT_GE(accuracy(y, ens.predict_batch(x)) + 0.03, accuracy(y, single.predict_batch(x)));
}

TEST(MlpEnsembleRegressor, AveragesMembers) {
  Matrix x;
  std::vector<double> y;
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const double v = rng.uniform(0.0, 1.0);
    x.push_back({v});
    y.push_back(std::sin(6.0 * v));
  }
  auto p = small_net();
  p.epochs = 60;
  MlpEnsembleRegressor ens(p, 3);
  ens.fit(x, y);
  double sse_ens = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = ens.predict(x[i]) - y[i];
    sse_ens += e * e;
  }
  EXPECT_LT(std::sqrt(sse_ens / static_cast<double>(x.size())), 0.3);
}

TEST(MlpEnsemble, RejectsZeroMembers) {
  EXPECT_THROW(MlpEnsembleRegressor(MlpParams{}, 0), Error);
}

TEST(Mlp, RejectsEmptyTrainingData) {
  MlpClassifier mlp;
  EXPECT_THROW(mlp.fit({}, {}), Error);
}

}  // namespace
}  // namespace spmvml::ml
