// Study assembly tests: labels are argmins, times rows align, feature-set
// projection, joint one-hot layout, COO census, log-target round trip.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "core/study.hpp"

namespace spmvml {
namespace {

const LabeledCorpus& shared_corpus() {
  static const LabeledCorpus corpus = collect_corpus(make_small_plan(20, 321));
  return corpus;
}

TEST(Study, LabelsAreArgminOverCandidates) {
  const auto study = make_classification_study(
      shared_corpus(), 0, Precision::kDouble, kAllFormats,
      FeatureSet::kSet123);
  ASSERT_EQ(study.data.size(), shared_corpus().size());
  for (std::size_t i = 0; i < study.data.size(); ++i) {
    const auto& row = study.times[i];
    const auto best =
        std::min_element(row.begin(), row.end()) - row.begin();
    EXPECT_EQ(study.data.labels[i], static_cast<int>(best));
  }
}

TEST(Study, FeatureSetControlsWidth) {
  for (auto [set, width] :
       {std::pair{FeatureSet::kSet1, 5}, std::pair{FeatureSet::kSet12, 11},
        std::pair{FeatureSet::kSet123, 17},
        std::pair{FeatureSet::kImportant, 7}}) {
    const auto study = make_classification_study(
        shared_corpus(), 1, Precision::kSingle, kBasicFormats, set);
    EXPECT_EQ(study.data.num_features(), width);
  }
}

TEST(Study, BasicFormatsYieldLabelsInRange) {
  const auto study = make_classification_study(
      shared_corpus(), 0, Precision::kSingle, kBasicFormats,
      FeatureSet::kSet12);
  for (int label : study.data.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 3);
  }
  EXPECT_EQ(study.candidates.size(), 3u);
}

TEST(Study, DropCooBestFiltersRows) {
  const auto all = make_classification_study(
      shared_corpus(), 0, Precision::kDouble, kBasicFormats,
      FeatureSet::kSet12, false);
  const auto filtered = make_classification_study(
      shared_corpus(), 0, Precision::kDouble, kBasicFormats,
      FeatureSet::kSet12, true);
  EXPECT_LE(filtered.data.size(), all.data.size());
  const auto census = coo_census(shared_corpus(), 0, Precision::kDouble);
  EXPECT_EQ(all.data.size() - filtered.data.size(), census.coo_best_all);
}

TEST(Study, JointRegressionAppendsOneHot) {
  const auto study = make_joint_regression_study(
      shared_corpus(), 1, Precision::kDouble, kAllFormats,
      FeatureSet::kSet1);
  EXPECT_EQ(study.data.size(), shared_corpus().size() * kNumFormats);
  EXPECT_EQ(study.data.num_features(), 5 + kNumFormats);
  // One-hot block sums to 1 per sample.
  for (const auto& row : study.data.x) {
    double onehot = 0.0;
    for (int k = 0; k < kNumFormats; ++k)
      onehot += row[static_cast<std::size_t>(5 + k)];
    EXPECT_DOUBLE_EQ(onehot, 1.0);
  }
}

TEST(Study, RegressionTargetsAreLogSeconds) {
  const auto study = make_format_regression_study(
      shared_corpus(), 0, Precision::kDouble, Format::kMergeCsr,
      FeatureSet::kSet123);
  ASSERT_EQ(study.data.size(), shared_corpus().size());
  for (std::size_t i = 0; i < study.data.size(); ++i) {
    EXPECT_NEAR(regression_target_to_seconds(study.data.targets[i]),
                study.seconds[i], study.seconds[i] * 1e-9);
  }
}

TEST(Study, TargetTransformRoundTrips) {
  for (double t : {1e-6, 3.2e-4, 0.5}) {
    EXPECT_NEAR(regression_target_to_seconds(seconds_to_regression_target(t)),
                t, t * 1e-12);
  }
  EXPECT_THROW(seconds_to_regression_target(0.0), Error);
}

TEST(Study, CooCensusCountsAreBounded) {
  const auto census = coo_census(shared_corpus(), 0, Precision::kDouble);
  EXPECT_EQ(census.total, shared_corpus().size());
  EXPECT_LE(census.coo_best_all, census.coo_best_basic4);
  EXPECT_GE(census.mean_exclusion_penalty, 1.0);
}

TEST(Study, EmptyCandidatesThrows) {
  EXPECT_THROW(make_classification_study(shared_corpus(), 0,
                                         Precision::kDouble, {},
                                         FeatureSet::kSet1),
               Error);
}

}  // namespace
}  // namespace spmvml
