// Gradient-boosted tree tests: boosting improves on stumps, multiclass
// softmax behaves, feature importance identifies the informative feature,
// subsampling stays deterministic per seed.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/decision_tree.hpp"
#include "ml/gbt.hpp"
#include "ml/metrics.hpp"

namespace spmvml::ml {
namespace {

/// Noisy 2D three-class blobs.
void make_blobs(int n, Matrix& x, std::vector<int>& y, std::uint64_t seed) {
  Rng rng(seed);
  const double cx[3] = {0.0, 4.0, 2.0};
  const double cy[3] = {0.0, 0.0, 3.5};
  for (int i = 0; i < n; ++i) {
    const int k = i % 3;
    x.push_back({cx[k] + rng.normal(0.0, 0.8), cy[k] + rng.normal(0.0, 0.8)});
    y.push_back(k);
  }
}

TEST(Gbt, SeparatesBlobs) {
  Matrix x;
  std::vector<int> y;
  make_blobs(600, x, y, 1);
  GbtParams p;
  p.n_estimators = 30;
  p.max_depth = 3;
  GbtClassifier gbt(p);
  gbt.fit(x, y);
  EXPECT_GT(accuracy(y, gbt.predict_batch(x)), 0.95);
}

TEST(Gbt, BeatsShallowSingleTreeOnAdditiveProblem) {
  // y depends additively on 3 features; boosting of depth-1 stumps can
  // represent it, a single depth-1 tree cannot.
  Matrix x;
  std::vector<int> y;
  Rng rng(2);
  for (int i = 0; i < 800; ++i) {
    const double a = rng.uniform(), b = rng.uniform(), c = rng.uniform();
    x.push_back({a, b, c});
    y.push_back(a + b + c > 1.5 ? 1 : 0);
  }
  TreeParams stump_params;
  stump_params.max_depth = 1;
  DecisionTreeClassifier stump(stump_params);
  stump.fit(x, y);

  GbtParams p;
  p.n_estimators = 60;
  p.max_depth = 1;
  GbtClassifier gbt(p);
  gbt.fit(x, y);

  EXPECT_GT(accuracy(y, gbt.predict_batch(x)), accuracy(y, stump.predict_batch(x)) + 0.05);
}

TEST(Gbt, ProbabilitiesSumToOne) {
  Matrix x;
  std::vector<int> y;
  make_blobs(300, x, y, 3);
  GbtParams p;
  p.n_estimators = 10;
  GbtClassifier gbt(p);
  gbt.fit(x, y);
  const auto probs = gbt.predict_proba({1.0, 1.0});
  ASSERT_EQ(probs.size(), 3u);
  double sum = 0.0;
  for (double v : probs) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Gbt, ImportanceFindsInformativeFeature) {
  // Feature 1 decides the label; features 0 and 2 are noise.
  Matrix x;
  std::vector<int> y;
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    const double informative = rng.uniform();
    x.push_back({rng.uniform(), informative, rng.uniform()});
    y.push_back(informative > 0.5 ? 1 : 0);
  }
  GbtParams p;
  p.n_estimators = 20;
  p.max_depth = 3;
  GbtClassifier gbt(p);
  gbt.fit(x, y);
  const auto weight = gbt.feature_importance_weight();
  const auto gain = gbt.feature_importance_gain();
  ASSERT_EQ(weight.size(), 3u);
  EXPECT_GT(weight[1], weight[0]);
  EXPECT_GT(weight[1], weight[2]);
  EXPECT_GT(gain[1], gain[0] + gain[2]);
}

TEST(Gbt, DeterministicForSeed) {
  Matrix x;
  std::vector<int> y;
  make_blobs(200, x, y, 5);
  GbtParams p;
  p.n_estimators = 15;
  p.subsample = 0.7;
  GbtClassifier a(p), b(p);
  a.fit(x, y);
  b.fit(x, y);
  for (const auto& row : x) EXPECT_EQ(a.predict(row), b.predict(row));
}

TEST(Gbt, RejectsSingleClass) {
  Matrix x = {{1.0}, {2.0}};
  std::vector<int> y = {0, 0};
  GbtClassifier gbt;
  EXPECT_THROW(gbt.fit(x, y), Error);
}

TEST(GbtRegressor, FitsLinearFunction) {
  Matrix x;
  std::vector<double> y;
  Rng rng(6);
  for (int i = 0; i < 600; ++i) {
    const double v = rng.uniform(0.0, 1.0);
    x.push_back({v});
    y.push_back(3.0 * v + 1.0);
  }
  GbtParams p;
  p.n_estimators = 150;
  p.max_depth = 4;
  GbtRegressor gbt(p);
  gbt.fit(x, y);
  for (double v = 0.1; v < 0.95; v += 0.1)
    EXPECT_NEAR(gbt.predict({v}), 3.0 * v + 1.0, 0.25);
}

TEST(GbtRegressor, MoreRoundsReduceTrainingError) {
  Matrix x;
  std::vector<double> y;
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    const double v = rng.uniform(0.0, 6.28);
    x.push_back({v});
    y.push_back(std::sin(v));
  }
  auto train_rmse = [&](int rounds) {
    GbtParams p;
    p.n_estimators = rounds;
    p.max_depth = 3;
    GbtRegressor gbt(p);
    gbt.fit(x, y);
    double sse = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double e = gbt.predict(x[i]) - y[i];
      sse += e * e;
    }
    return std::sqrt(sse / static_cast<double>(x.size()));
  };
  EXPECT_LT(train_rmse(80), train_rmse(5));
}

TEST(GbtRegressor, ConstantTarget) {
  Matrix x = {{1.0}, {2.0}, {3.0}};
  std::vector<double> y = {5.0, 5.0, 5.0};
  GbtRegressor gbt;
  gbt.fit(x, y);
  EXPECT_NEAR(gbt.predict({2.0}), 5.0, 1e-6);
}

}  // namespace
}  // namespace spmvml::ml
