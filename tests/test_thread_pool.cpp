// Thread-pool tests: task completion, wait_idle barrier semantics,
// deadline-delayed resubmission (the backoff-yield mechanism), worker
// identity, and tasks submitting tasks.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/gemm.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"

namespace spmvml {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i)
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, WaitIdleIsABarrier) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 32; ++i)
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      done.fetch_add(1);
    });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 32);
  // The pool is reusable after going idle.
  pool.submit([&done] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 33);
}

TEST(ThreadPool, DelayedTaskRunsAfterItsDeadline) {
  ThreadPool pool(2);
  WallTimer timer;
  std::atomic<double> ran_at{-1.0};
  pool.submit_after(0.05, [&] { ran_at.store(timer.seconds()); });
  pool.wait_idle();
  EXPECT_GE(ran_at.load(), 0.05);
  EXPECT_LT(ran_at.load(), 1.0);  // generous upper bound for CI jitter
}

TEST(ThreadPool, DelayedTasksDoNotStallImmediateWork) {
  // One long-delayed task must not block the other worker's throughput —
  // this is the property that lets backoff waits overlap real work.
  ThreadPool pool(2);
  std::atomic<int> immediate{0};
  pool.submit_after(0.2, [] {});
  WallTimer timer;
  for (int i = 0; i < 50; ++i)
    pool.submit([&immediate] { immediate.fetch_add(1); });
  while (immediate.load() < 50 && timer.seconds() < 5.0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  // All immediate tasks finished long before the delayed task's deadline.
  EXPECT_EQ(immediate.load(), 50);
  EXPECT_LT(timer.seconds(), 0.2);
  pool.wait_idle();
}

TEST(ThreadPool, WaitIdleCoversTasksSubmittedByTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  // A resumable-task chain: each stage requeues the next with a deadline.
  pool.submit([&] {
    count.fetch_add(1);
    pool.submit_after(0.01, [&] {
      count.fetch_add(1);
      pool.submit([&] { count.fetch_add(1); });
    });
  });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, ZeroAndNegativeDelayDegradeToSubmit) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.submit_after(0.0, [&] { count.fetch_add(1); });
  pool.submit_after(-1.0, [&] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, WorkerIndexIsStableAndInRange) {
  ThreadPool pool(4);
  EXPECT_EQ(ThreadPool::worker_index(), -1);  // not a pool thread
  std::mutex mu;
  std::set<int> seen;
  for (int i = 0; i < 64; ++i)
    pool.submit([&] {
      const int idx = ThreadPool::worker_index();
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(idx);
    });
  pool.wait_idle();
  ASSERT_FALSE(seen.empty());
  EXPECT_GE(*seen.begin(), 0);
  EXPECT_LT(*seen.rbegin(), pool.size());
}

TEST(ThreadPool, SingleThreadPoolStillCompletes) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    pool.submit([&order, i] { order.push_back(i); });
  pool.wait_idle();
  // One worker drains the FIFO in submission order.
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Gemm, MatchesNaiveReference) {
  // 3x2 * (4x2)^T + bias.
  const std::vector<double> a = {1, 2, 3, 4, 5, 6};
  const std::vector<double> b = {1, 0, 0, 1, 1, 1, 2, -1};
  const std::vector<double> bias = {0.5, -0.5, 0.0, 1.0};
  std::vector<double> c(12);
  gemm_nt(3, 4, 2, a.data(), b.data(), bias.data(), c.data());
  const std::vector<double> expect = {1.5, 1.5, 3, 1,  3.5, 3.5, 7, 3,
                                      5.5, 5.5, 11, 5};
  for (std::size_t i = 0; i < expect.size(); ++i)
    EXPECT_DOUBLE_EQ(c[i], expect[i]) << i;

  // C = A (2x3) * B (3x2).
  const std::vector<double> b2 = {1, 2, 3, 4, 5, 6};
  std::vector<double> c2(4);
  gemm_nn(2, 2, 3, a.data(), b2.data(), c2.data());
  EXPECT_DOUBLE_EQ(c2[0], 1 * 1 + 2 * 3 + 3 * 5);
  EXPECT_DOUBLE_EQ(c2[1], 1 * 2 + 2 * 4 + 3 * 6);
  EXPECT_DOUBLE_EQ(c2[2], 4 * 1 + 5 * 3 + 6 * 5);
  EXPECT_DOUBLE_EQ(c2[3], 4 * 2 + 5 * 4 + 6 * 6);

  // C = A^T (3x2 -> 2x3 reduction over rows) * B (3x2): 2x2.
  std::vector<double> c3(4);
  gemm_tn(2, 2, 3, a.data(), a.data(), c3.data());
  EXPECT_DOUBLE_EQ(c3[0], 1 * 1 + 3 * 3 + 5 * 5);
  EXPECT_DOUBLE_EQ(c3[1], 1 * 2 + 3 * 4 + 5 * 6);
  EXPECT_DOUBLE_EQ(c3[2], 2 * 1 + 4 * 3 + 6 * 5);
  EXPECT_DOUBLE_EQ(c3[3], 2 * 2 + 4 * 4 + 6 * 6);
}

TEST(Gemm, TiledReductionMatchesUntiledOrder) {
  // k spans several kGemmTileK tiles; tiling must not change the
  // ascending-k accumulation (sums round-trip through the C row exactly).
  const int k = kGemmTileK * 2 + 37;
  std::vector<double> a(static_cast<std::size_t>(k)), b(a.size());
  for (int i = 0; i < k; ++i) {
    a[static_cast<std::size_t>(i)] = std::sin(i * 0.7) * 1e3;
    b[static_cast<std::size_t>(i)] = std::cos(i * 0.3);
  }
  double c = 0.0;
  gemm_nt(1, 1, k, a.data(), b.data(), nullptr, &c);
  double ref = 0.0;
  for (int i = 0; i < k; ++i)
    ref += a[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(i)];
  EXPECT_DOUBLE_EQ(c, ref);
}

}  // namespace
}  // namespace spmvml
