// Serving-ingest tests: binary CSR sidecar (bitwise identity with the
// Matrix Market parse, corruption detection, transparent fallback), the
// materialized-matrix cache (borrowed-view pinning under eviction,
// single-flight coalescing, stat-cache invalidation), pool-blocked
// feature extraction identity, and the sharded-dispatch service contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "core/format_selector.hpp"
#include "features/features.hpp"
#include "serve/feature_cache.hpp"
#include "serve/matrix_cache.hpp"
#include "serve/model_registry.hpp"
#include "serve/request.hpp"
#include "serve/service.hpp"
#include "sparse/csr_binary.hpp"
#include "sparse/mmio.hpp"
#include "synth/corpus.hpp"
#include "synth/generators.hpp"

namespace spmvml {
namespace {

using serve::MatrixCache;
using serve::ModelRegistry;
using serve::Request;
using serve::RequestMode;
using serve::Response;
using serve::Service;
using serve::ServiceConfig;

/// Bitwise CSR comparison: dimensions plus raw memcmp over all three
/// arrays — the identity contract the sidecar and the pool extractor
/// both promise.
bool csr_bitwise_equal(const Csr<double>& a, const Csr<double>& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols() || a.nnz() != b.nnz())
    return false;
  const auto arp = a.row_ptr(), brp = b.row_ptr();
  const auto aci = a.col_idx(), bci = b.col_idx();
  const auto av = a.values(), bv = b.values();
  return std::memcmp(arp.data(), brp.data(), arp.size_bytes()) == 0 &&
         std::memcmp(aci.data(), bci.data(), aci.size_bytes()) == 0 &&
         std::memcmp(av.data(), bv.data(), av.size_bytes()) == 0;
}

/// A temp Matrix Market file (plus any sidecar) that removes itself.
struct TempMatrix {
  std::string path;
  TempMatrix(const std::string& name, const GenSpec& spec) : path(name) {
    write_matrix_market(path, generate(spec));
  }
  TempMatrix(const std::string& name, int seed)
      : TempMatrix(name, make_small_plan(1, seed).specs[0]) {}
  ~TempMatrix() {
    std::remove(path.c_str());
    std::remove(csr_sidecar_path(path).c_str());
  }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// --- Sidecar bitwise identity --------------------------------------------

TEST(IngestSidecar, BitwiseIdenticalToMmioAcrossFamilies) {
  // Differential fuzz across every generator family: the sidecar round
  // trip must reproduce the text-parsed CSR bit for bit — same arrays,
  // same content hash, same feature-cache key.
  for (int fam = 0; fam <= static_cast<int>(MatrixFamily::kGeomGraph);
       ++fam) {
    GenSpec spec;
    spec.family = static_cast<MatrixFamily>(fam);
    spec.rows = spec.cols = 400;
    spec.seed = 100 + static_cast<std::uint64_t>(fam);
    TempMatrix file("test_ingest_fam" + std::to_string(fam) + ".tmp.mtx",
                    spec);
    const Csr<double> text = read_matrix_market(file.path);
    const std::string side = csr_sidecar_path(file.path);
    write_csr_binary(side, text);
    const Csr<double> binary = read_csr_binary(side);
    EXPECT_TRUE(csr_bitwise_equal(text, binary)) << "family " << fam;
    EXPECT_EQ(serve::matrix_content_hash(text),
              serve::matrix_content_hash(binary));
  }
}

TEST(IngestSidecar, CorruptionSweepIsAlwaysDetected) {
  TempMatrix file("test_ingest_corrupt.tmp.mtx", 7);
  const Csr<double> m = read_matrix_market(file.path);
  const std::string side = csr_sidecar_path(file.path);
  write_csr_binary(side, m);
  const std::string good = read_file(side);
  ASSERT_FALSE(good.empty());

  // Truncation at several depths (header, mid-payload, last byte).
  for (const std::size_t keep :
       {std::size_t{4}, good.size() / 2, good.size() - 1}) {
    write_file(side, good.substr(0, keep));
    EXPECT_THROW(read_csr_binary(side), Error) << "truncated to " << keep;
  }
  // Single bit flip in the payload trips the checksum.
  {
    std::string bad = good;
    bad[bad.size() - 3] = static_cast<char>(bad[bad.size() - 3] ^ 0x10);
    write_file(side, bad);
    EXPECT_THROW(read_csr_binary(side), Error);
  }
  // Wrong magic is rejected before any allocation.
  {
    std::string bad = good;
    bad[0] = 'X';
    write_file(side, bad);
    EXPECT_THROW(read_csr_binary(side), Error);
  }
  // Restore and confirm the good bytes still load.
  write_file(side, good);
  EXPECT_TRUE(csr_bitwise_equal(read_csr_binary(side), m));
}

TEST(IngestSidecar, CacheFallsBackToTextWhenSidecarCorrupt) {
  TempMatrix file("test_ingest_fallback.tmp.mtx", 11);
  const Csr<double> expect = read_matrix_market(file.path);
  const std::string side = csr_sidecar_path(file.path);
  write_csr_binary(side, expect);
  std::string bad = read_file(side);
  bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 0x01);
  write_file(side, bad);

  MatrixCache cache(64 << 20, /*shards=*/1);
  const MatrixCache::View v = cache.load(file.path);
  EXPECT_TRUE(csr_bitwise_equal(*v.matrix, expect));
  EXPECT_FALSE(v.sidecar);  // corrupt sidecar -> transparent text parse
  EXPECT_EQ(cache.stats().sidecar_loads, 0u);
  EXPECT_EQ(cache.stats().parses, 1u);
}

TEST(IngestSidecar, CacheUsesFreshSidecar) {
  TempMatrix file("test_ingest_sidecar.tmp.mtx", 13);
  const Csr<double> expect = read_matrix_market(file.path);
  write_csr_binary(csr_sidecar_path(file.path), expect);

  MatrixCache cache(64 << 20, /*shards=*/1);
  const MatrixCache::View v = cache.load(file.path);
  EXPECT_TRUE(v.sidecar);
  EXPECT_TRUE(csr_bitwise_equal(*v.matrix, expect));
  EXPECT_EQ(v.key, serve::matrix_content_hash(expect));
  EXPECT_EQ(cache.stats().sidecar_loads, 1u);
}

// --- Matrix cache ---------------------------------------------------------

TEST(IngestCache, RepeatLoadHitsWithoutReparse) {
  TempMatrix file("test_ingest_repeat.tmp.mtx", 21);
  MatrixCache cache(64 << 20, /*shards=*/1);
  const MatrixCache::View first = cache.load(file.path);
  EXPECT_FALSE(first.cache_hit);
  const MatrixCache::View again = cache.load(file.path);
  EXPECT_TRUE(again.cache_hit);
  EXPECT_EQ(first.matrix.get(), again.matrix.get());  // same storage
  EXPECT_EQ(cache.stats().parses, 1u);
  // resolve_key answers from the stat cache alone.
  const auto key = cache.resolve_key(file.path);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(*key, first.key);
}

TEST(IngestCache, EvictionCannotInvalidatePinnedViews) {
  TempMatrix a("test_ingest_pin_a.tmp.mtx", 31);
  TempMatrix b("test_ingest_pin_b.tmp.mtx", 32);
  const Csr<double> expect_a = read_matrix_market(a.path);

  // Budget sized to hold exactly one of the two matrices.
  const std::size_t one =
      static_cast<std::size_t>(expect_a.nnz()) * (sizeof(double) + 8) +
      static_cast<std::size_t>(expect_a.rows() + 1) * 8;
  MatrixCache cache(one + one / 4, /*shards=*/1);

  const MatrixCache::View pinned = cache.load(a.path);
  cache.load(b.path);  // evicts a's entry from the LRU
  EXPECT_GE(cache.stats().evictions, 1u);
  EXPECT_FALSE(cache.get(pinned.key).has_value());
  // The borrowed view outlives the eviction: refcount pins the storage.
  EXPECT_TRUE(csr_bitwise_equal(*pinned.matrix, expect_a));
}

TEST(IngestCache, OversizeEntriesServedUncached) {
  TempMatrix file("test_ingest_oversize.tmp.mtx", 41);
  MatrixCache cache(/*budget_bytes=*/1024, /*shards=*/1);
  const MatrixCache::View v = cache.load(file.path);
  EXPECT_NE(v.matrix, nullptr);
  EXPECT_GE(cache.stats().oversize, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(IngestCache, ZeroBudgetDisablesCachingNotLoading) {
  TempMatrix file("test_ingest_zero.tmp.mtx", 43);
  MatrixCache cache(/*budget_bytes=*/0, /*shards=*/4);
  const Csr<double> expect = read_matrix_market(file.path);
  EXPECT_TRUE(csr_bitwise_equal(*cache.load(file.path).matrix, expect));
  EXPECT_TRUE(csr_bitwise_equal(*cache.load(file.path).matrix, expect));
}

TEST(IngestCache, SingleFlightCoalescesConcurrentMisses) {
  TempMatrix file("test_ingest_flight.tmp.mtx", 51);
  MatrixCache cache(64 << 20, /*shards=*/4);

  constexpr int kThreads = 8;
  std::vector<std::future<MatrixCache::View>> loads;
  loads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i)
    loads.push_back(std::async(std::launch::async,
                               [&] { return cache.load(file.path); }));
  std::vector<MatrixCache::View> views;
  views.reserve(kThreads);
  for (auto& f : loads) views.push_back(f.get());

  // One parse total; every thread got the same storage either by waiting
  // on the flight or from the LRU after publication.
  EXPECT_EQ(cache.stats().parses, 1u);
  for (const auto& v : views) {
    EXPECT_EQ(v.matrix.get(), views.front().matrix.get());
    EXPECT_EQ(v.key, views.front().key);
  }
}

TEST(IngestCache, SingleFlightPropagatesParseErrors) {
  const std::string path = "test_ingest_badmtx.tmp.mtx";
  write_file(path, "%%MatrixMarket matrix coordinate real general\nnot a\n");
  MatrixCache cache(64 << 20, /*shards=*/1);

  constexpr int kThreads = 4;
  std::vector<std::future<bool>> loads;
  for (int i = 0; i < kThreads; ++i)
    loads.push_back(std::async(std::launch::async, [&] {
      try {
        cache.load(path);
        return false;
      } catch (const Error&) {
        return true;
      }
    }));
  for (auto& f : loads) EXPECT_TRUE(f.get());
  std::remove(path.c_str());
}

TEST(IngestCache, StatCacheInvalidatesOnRewrite) {
  const std::string path = "test_ingest_rewrite.tmp.mtx";
  write_matrix_market(path, generate(make_small_plan(1, 61).specs[0]));
  MatrixCache cache(64 << 20, /*shards=*/1);
  const std::uint64_t key1 = cache.load(path).key;

  // Rewrite with a different matrix; mtime/size change invalidates the
  // stat-cache mapping and forces a re-ingest under a new content key.
  GenSpec spec = make_small_plan(1, 62).specs[0];
  spec.rows += 64;
  write_matrix_market(path, generate(spec));
  const MatrixCache::View reloaded = cache.load(path);
  EXPECT_NE(reloaded.key, key1);
  EXPECT_EQ(cache.stats().parses, 2u);
  std::remove(path.c_str());
}

// --- Pool-blocked feature extraction --------------------------------------

TEST(IngestFeatures, PoolExtractionBitwiseMatchesSerial) {
  ThreadPool pool(4);
  // Small matrices (single block) and one spanning many 4096-row blocks.
  std::vector<GenSpec> specs = {make_small_plan(1, 71).specs[0],
                                make_small_plan(1, 72).specs[0]};
  GenSpec big;
  big.family = MatrixFamily::kPowerLaw;
  big.rows = big.cols = 20000;  // five partition blocks
  big.seed = 73;
  specs.push_back(big);

  for (const GenSpec& spec : specs) {
    const Csr<double> m = generate(spec);
    const FeatureVector serial = extract_features(m);
    const FeatureVector pooled = extract_features(m, &pool);
    EXPECT_EQ(std::memcmp(serial.values.data(), pooled.values.data(),
                          sizeof(serial.values)),
              0)
        << "rows=" << m.rows();
    // nullptr pool degrades to the serial path.
    const FeatureVector none = extract_features(m, nullptr);
    EXPECT_EQ(std::memcmp(serial.values.data(), none.values.data(),
                          sizeof(serial.values)),
              0);
  }
}

// --- Service integration --------------------------------------------------

const LabeledCorpus& shared_corpus() {
  static const LabeledCorpus corpus = collect_corpus(make_small_plan(40, 321));
  return corpus;
}

std::shared_ptr<const FormatSelector> tree_selector() {
  static const auto selector = [] {
    auto s = std::make_shared<FormatSelector>(
        ModelKind::kDecisionTree, FeatureSet::kSet12, kAllFormats,
        /*fast=*/true);
    s->fit(shared_corpus(), 0, Precision::kDouble);
    return std::shared_ptr<const FormatSelector>(s);
  }();
  return selector;
}

TEST(IngestService, ShardedDispatchAnswersEveryRequest) {
  ModelRegistry registry;
  registry.install(tree_selector());
  ServiceConfig cfg;
  cfg.threads = 2;
  cfg.max_batch = 4;
  cfg.max_delay_ms = 0.2;
  cfg.dispatch_shards = 4;
  Service service(cfg, registry);

  TempMatrix file("test_ingest_shards.tmp.mtx", 81);
  const Format expect =
      tree_selector()->select(extract_features(read_matrix_market(file.path)));

  constexpr int kRequests = 64;
  std::vector<std::future<Response>> futures;
  futures.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    Request req;
    req.id = "s" + std::to_string(i);
    req.mode = RequestMode::kSelect;
    req.matrix_path = file.path;
    futures.push_back(service.submit(std::move(req)));
  }
  for (int i = 0; i < kRequests; ++i) {
    const Response rsp = futures[static_cast<std::size_t>(i)].get();
    ASSERT_TRUE(rsp.ok) << rsp.error;
    EXPECT_EQ(rsp.format, expect);
  }
  // The whole burst re-parsed the matrix at most once.
  EXPECT_EQ(service.ingest().stats().parses, 1u);
  service.shutdown();
}

TEST(IngestService, InlineFeaturesMaterializeUsesIngestCache) {
  ModelRegistry registry;
  registry.install(tree_selector());
  ServiceConfig cfg;
  cfg.threads = 2;
  cfg.max_batch = 8;
  cfg.max_delay_ms = 0.2;
  Service service(cfg, registry);

  TempMatrix file("test_ingest_inline.tmp.mtx", 91);
  const FeatureVector f = extract_features(read_matrix_market(file.path));

  Request req;
  req.mode = RequestMode::kSelect;
  req.matrix_path = file.path;
  req.features = {f.values.begin(), f.values.end()};
  req.materialize = true;
  for (int i = 0; i < 3; ++i) {
    req.id = "m" + std::to_string(i);
    const Response rsp = service.call(req);
    ASSERT_TRUE(rsp.ok) << rsp.error;
    EXPECT_TRUE(rsp.materialized);
    EXPECT_GT(rsp.format_bytes, 0);
  }
  // Inline-features materialization rides the ingest cache: one parse
  // serves all three conversions.
  EXPECT_EQ(service.ingest().stats().parses, 1u);
  service.shutdown();
}

}  // namespace
}  // namespace spmvml
