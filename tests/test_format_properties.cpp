// Property-based cross-format tests: for randomly generated matrices from
// every structure family, all six formats must compute the same y = A*x
// (up to floating-point reassociation), conversions must preserve nnz, and
// partition/tile shape choices must not affect results.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "sparse/spmv.hpp"
#include "synth/generators.hpp"

namespace spmvml {
namespace {

std::vector<double> random_x(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  return x;
}

double rel_err(double a, double b) {
  const double scale = std::max({std::abs(a), std::abs(b), 1e-30});
  return std::abs(a - b) / scale;
}

using Param = std::tuple<MatrixFamily, double /*mu*/, double /*cv*/,
                         std::uint64_t /*seed*/>;

class AllFormatsAgree : public ::testing::TestWithParam<Param> {};

TEST_P(AllFormatsAgree, SpmvMatchesReference) {
  const auto [family, mu, cv, seed] = GetParam();
  GenSpec spec;
  spec.family = family;
  spec.rows = 400;
  spec.cols = 450;
  spec.row_mu = mu;
  spec.row_cv = cv;
  spec.seed = seed;
  const auto m = generate(spec);
  m.validate();
  ASSERT_GT(m.nnz(), 0);

  const auto x = random_x(m.cols(), seed ^ 0xabcdULL);
  std::vector<double> expect(static_cast<std::size_t>(m.rows()));
  spmv_reference(m, x, expect);

  for (Format f : kAllFormats) {
    const auto any = AnyMatrix<double>::build(f, m);
    std::vector<double> y(static_cast<std::size_t>(m.rows()));
    any.spmv(x, y);
    for (index_t r = 0; r < m.rows(); ++r) {
      ASSERT_LT(rel_err(y[static_cast<std::size_t>(r)],
                        expect[static_cast<std::size_t>(r)]),
                1e-10)
          << format_name(f) << " row " << r << " family "
          << family_name(family);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, AllFormatsAgree,
    ::testing::Combine(
        ::testing::Values(MatrixFamily::kBanded, MatrixFamily::kStencil,
                          MatrixFamily::kUniformRandom,
                          MatrixFamily::kPowerLaw, MatrixFamily::kBlockRandom,
                          MatrixFamily::kGeomGraph),
        ::testing::Values(3.0, 12.0),
        ::testing::Values(0.2, 1.5),
        ::testing::Values(1ULL, 99ULL)));

class ConversionPreservesNnz : public ::testing::TestWithParam<Param> {};

TEST_P(ConversionPreservesNnz, AllFormats) {
  const auto [family, mu, cv, seed] = GetParam();
  GenSpec spec;
  spec.family = family;
  spec.rows = 300;
  spec.cols = 300;
  spec.row_mu = mu;
  spec.row_cv = cv;
  spec.seed = seed;
  const auto m = generate(spec);
  for (Format f : kAllFormats) {
    const auto any = AnyMatrix<double>::build(f, m);
    EXPECT_EQ(any.nnz(), m.nnz()) << format_name(f);
    EXPECT_EQ(any.rows(), m.rows()) << format_name(f);
    EXPECT_EQ(any.cols(), m.cols()) << format_name(f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, ConversionPreservesNnz,
    ::testing::Combine(
        ::testing::Values(MatrixFamily::kUniformRandom,
                          MatrixFamily::kPowerLaw, MatrixFamily::kBanded),
        ::testing::Values(6.0),
        ::testing::Values(0.8),
        ::testing::Values(3ULL, 4ULL, 5ULL)));

class MergePartitionInvariance
    : public ::testing::TestWithParam<index_t> {};

TEST_P(MergePartitionInvariance, ResultIndependentOfPartitions) {
  GenSpec spec;
  spec.family = MatrixFamily::kPowerLaw;
  spec.rows = 500;
  spec.cols = 500;
  spec.row_mu = 9.0;
  spec.seed = 77;
  const auto m = generate(spec);
  const auto x = random_x(m.cols(), 123);
  std::vector<double> expect(static_cast<std::size_t>(m.rows()));
  spmv_reference(m, x, expect);

  const auto mc = MergeCsr<double>::from_csr(m, GetParam());
  mc.validate();
  std::vector<double> y(static_cast<std::size_t>(m.rows()));
  mc.spmv(x, y);
  for (index_t r = 0; r < m.rows(); ++r)
    ASSERT_LT(rel_err(y[static_cast<std::size_t>(r)],
                      expect[static_cast<std::size_t>(r)]),
              1e-10);
}

INSTANTIATE_TEST_SUITE_P(Partitions, MergePartitionInvariance,
                         ::testing::Values(1, 2, 7, 32, 255, 4096));

class Csr5TileInvariance
    : public ::testing::TestWithParam<std::pair<index_t, index_t>> {};

TEST_P(Csr5TileInvariance, ResultIndependentOfTileShape) {
  GenSpec spec;
  spec.family = MatrixFamily::kUniformRandom;
  spec.rows = 400;
  spec.cols = 400;
  spec.row_mu = 7.0;
  spec.row_cv = 2.0;
  spec.seed = 31;
  const auto m = generate(spec);
  const auto x = random_x(m.cols(), 321);
  std::vector<double> expect(static_cast<std::size_t>(m.rows()));
  spmv_reference(m, x, expect);

  const auto [omega, sigma] = GetParam();
  const auto c5 = Csr5<double>::from_csr(m, omega, sigma);
  c5.validate();
  std::vector<double> y(static_cast<std::size_t>(m.rows()));
  c5.spmv(x, y);
  for (index_t r = 0; r < m.rows(); ++r)
    ASSERT_LT(rel_err(y[static_cast<std::size_t>(r)],
                      expect[static_cast<std::size_t>(r)]),
              1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Tiles, Csr5TileInvariance,
    ::testing::Values(std::pair<index_t, index_t>{1, 1},
                      std::pair<index_t, index_t>{4, 4},
                      std::pair<index_t, index_t>{32, 16},
                      std::pair<index_t, index_t>{16, 64},
                      std::pair<index_t, index_t>{128, 3}));

TEST(EdgeCases, SingleEntryMatrixAllFormats) {
  Csr<double> m(1, 1, {0, 1}, {0}, {2.5});
  std::vector<double> x = {2.0};
  for (Format f : kAllFormats) {
    const auto any = AnyMatrix<double>::build(f, m);
    std::vector<double> y(1);
    any.spmv(x, y);
    EXPECT_DOUBLE_EQ(y[0], 5.0) << format_name(f);
  }
}

TEST(EdgeCases, AllRowsEmptyExceptLast) {
  Csr<double> m(5, 3, {0, 0, 0, 0, 0, 2}, {0, 2}, {1.0, 2.0});
  std::vector<double> x = {1.0, 1.0, 1.0};
  for (Format f : kAllFormats) {
    const auto any = AnyMatrix<double>::build(f, m);
    std::vector<double> y(5, -1.0);
    any.spmv(x, y);
    for (int r = 0; r < 4; ++r) EXPECT_DOUBLE_EQ(y[r], 0.0) << format_name(f);
    EXPECT_DOUBLE_EQ(y[4], 3.0) << format_name(f);
  }
}

TEST(EdgeCases, FullyDenseRow) {
  // One row owning every column stresses ELL width and CSR5 flags.
  const index_t n = 100;
  std::vector<index_t> row_ptr = {0, n, n + 1};
  std::vector<index_t> cols(static_cast<std::size_t>(n) + 1);
  std::vector<double> vals(static_cast<std::size_t>(n) + 1, 1.0);
  for (index_t c = 0; c < n; ++c) cols[static_cast<std::size_t>(c)] = c;
  cols.back() = 0;
  Csr<double> m(2, n, std::move(row_ptr), std::move(cols), std::move(vals));
  std::vector<double> x(static_cast<std::size_t>(n), 1.0);
  for (Format f : kAllFormats) {
    const auto any = AnyMatrix<double>::build(f, m);
    std::vector<double> y(2);
    any.spmv(x, y);
    EXPECT_DOUBLE_EQ(y[0], static_cast<double>(n)) << format_name(f);
    EXPECT_DOUBLE_EQ(y[1], 1.0) << format_name(f);
  }
}

}  // namespace
}  // namespace spmvml
