// Property-based cross-format tests: for randomly generated matrices from
// every structure family, all seven formats must compute the same y = A*x
// (up to floating-point reassociation), conversions must preserve nnz, and
// partition/tile/slice shape choices must not affect results.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "sparse/spmv.hpp"
#include "synth/generators.hpp"

namespace spmvml {
namespace {

std::vector<double> random_x(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  return x;
}

double rel_err(double a, double b) {
  const double scale = std::max({std::abs(a), std::abs(b), 1e-30});
  return std::abs(a - b) / scale;
}

using Param = std::tuple<MatrixFamily, double /*mu*/, double /*cv*/,
                         std::uint64_t /*seed*/>;

class AllFormatsAgree : public ::testing::TestWithParam<Param> {};

TEST_P(AllFormatsAgree, SpmvMatchesReference) {
  const auto [family, mu, cv, seed] = GetParam();
  GenSpec spec;
  spec.family = family;
  spec.rows = 400;
  spec.cols = 450;
  spec.row_mu = mu;
  spec.row_cv = cv;
  spec.seed = seed;
  const auto m = generate(spec);
  m.validate();
  ASSERT_GT(m.nnz(), 0);

  const auto x = random_x(m.cols(), seed ^ 0xabcdULL);
  std::vector<double> expect(static_cast<std::size_t>(m.rows()));
  spmv_reference(m, x, expect);

  for (Format f : kAllFormats) {
    const auto any = AnyMatrix<double>::build(f, m);
    std::vector<double> y(static_cast<std::size_t>(m.rows()));
    any.spmv(x, y);
    for (index_t r = 0; r < m.rows(); ++r) {
      ASSERT_LT(rel_err(y[static_cast<std::size_t>(r)],
                        expect[static_cast<std::size_t>(r)]),
                1e-10)
          << format_name(f) << " row " << r << " family "
          << family_name(family);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, AllFormatsAgree,
    ::testing::Combine(
        ::testing::Values(MatrixFamily::kBanded, MatrixFamily::kStencil,
                          MatrixFamily::kUniformRandom,
                          MatrixFamily::kPowerLaw, MatrixFamily::kBlockRandom,
                          MatrixFamily::kGeomGraph),
        ::testing::Values(3.0, 12.0),
        ::testing::Values(0.2, 1.5),
        ::testing::Values(1ULL, 99ULL)));

class ConversionPreservesNnz : public ::testing::TestWithParam<Param> {};

TEST_P(ConversionPreservesNnz, AllFormats) {
  const auto [family, mu, cv, seed] = GetParam();
  GenSpec spec;
  spec.family = family;
  spec.rows = 300;
  spec.cols = 300;
  spec.row_mu = mu;
  spec.row_cv = cv;
  spec.seed = seed;
  const auto m = generate(spec);
  for (Format f : kAllFormats) {
    const auto any = AnyMatrix<double>::build(f, m);
    EXPECT_EQ(any.nnz(), m.nnz()) << format_name(f);
    EXPECT_EQ(any.rows(), m.rows()) << format_name(f);
    EXPECT_EQ(any.cols(), m.cols()) << format_name(f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, ConversionPreservesNnz,
    ::testing::Combine(
        ::testing::Values(MatrixFamily::kUniformRandom,
                          MatrixFamily::kPowerLaw, MatrixFamily::kBanded),
        ::testing::Values(6.0),
        ::testing::Values(0.8),
        ::testing::Values(3ULL, 4ULL, 5ULL)));

class MergePartitionInvariance
    : public ::testing::TestWithParam<index_t> {};

TEST_P(MergePartitionInvariance, ResultIndependentOfPartitions) {
  GenSpec spec;
  spec.family = MatrixFamily::kPowerLaw;
  spec.rows = 500;
  spec.cols = 500;
  spec.row_mu = 9.0;
  spec.seed = 77;
  const auto m = generate(spec);
  const auto x = random_x(m.cols(), 123);
  std::vector<double> expect(static_cast<std::size_t>(m.rows()));
  spmv_reference(m, x, expect);

  const auto mc = MergeCsr<double>::from_csr(m, GetParam());
  mc.validate();
  std::vector<double> y(static_cast<std::size_t>(m.rows()));
  mc.spmv(x, y);
  for (index_t r = 0; r < m.rows(); ++r)
    ASSERT_LT(rel_err(y[static_cast<std::size_t>(r)],
                      expect[static_cast<std::size_t>(r)]),
              1e-10);
}

INSTANTIATE_TEST_SUITE_P(Partitions, MergePartitionInvariance,
                         ::testing::Values(1, 2, 7, 32, 255, 4096));

class Csr5TileInvariance
    : public ::testing::TestWithParam<std::pair<index_t, index_t>> {};

TEST_P(Csr5TileInvariance, ResultIndependentOfTileShape) {
  GenSpec spec;
  spec.family = MatrixFamily::kUniformRandom;
  spec.rows = 400;
  spec.cols = 400;
  spec.row_mu = 7.0;
  spec.row_cv = 2.0;
  spec.seed = 31;
  const auto m = generate(spec);
  const auto x = random_x(m.cols(), 321);
  std::vector<double> expect(static_cast<std::size_t>(m.rows()));
  spmv_reference(m, x, expect);

  const auto [omega, sigma] = GetParam();
  const auto c5 = Csr5<double>::from_csr(m, omega, sigma);
  c5.validate();
  std::vector<double> y(static_cast<std::size_t>(m.rows()));
  c5.spmv(x, y);
  for (index_t r = 0; r < m.rows(); ++r)
    ASSERT_LT(rel_err(y[static_cast<std::size_t>(r)],
                      expect[static_cast<std::size_t>(r)]),
              1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Tiles, Csr5TileInvariance,
    ::testing::Values(std::pair<index_t, index_t>{1, 1},
                      std::pair<index_t, index_t>{4, 4},
                      std::pair<index_t, index_t>{32, 16},
                      std::pair<index_t, index_t>{16, 64},
                      std::pair<index_t, index_t>{128, 3}));

// SELL-C-sigma invariants that must hold for ANY (C, sigma) on ANY matrix:
// the padding ratio is bracketed by [1, ELL's ratio], the stored row order
// is a permutation, and the SpMV agrees with the CSR reference. Parameters
// deliberately include sigma values that do not divide the row count and a
// C that does not divide sigma (slices straddling sort windows).
using SellPropParam =
    std::tuple<MatrixFamily, index_t /*C*/, index_t /*sigma*/>;

class SellProperties : public ::testing::TestWithParam<SellPropParam> {};

TEST_P(SellProperties, PaddingPermutationAndSpmv) {
  const auto [family, c, sigma_raw] = GetParam();
  const index_t sigma = sigma_raw == 0 ? c : sigma_raw;  // 0 = "no sorting"
  GenSpec spec;
  spec.family = family;
  spec.rows = 443;  // prime: never divisible by C or sigma
  spec.cols = 401;
  spec.row_mu = 9.0;
  spec.row_cv = 1.4;
  spec.seed = 0x5e11u + static_cast<std::uint64_t>(c);
  const auto m = generate(spec);
  const auto sell = Sell<double>::from_csr(m, c, sigma);
  sell.validate();

  // Padding bracket: at least one slot per nonzero, never worse than ELL
  // (every slice is at most as wide as the global max row).
  const auto ell = Ell<double>::from_csr(m);
  if (m.nnz() > 0) {
    EXPECT_GE(sell.padding_ratio(), 1.0);
    EXPECT_LE(sell.padding_ratio(), ell.padding_ratio() + 1e-12);
  }

  // perm_ is a permutation of [0, rows).
  auto perm = std::vector<index_t>(sell.perm().begin(), sell.perm().end());
  ASSERT_EQ(perm.size(), static_cast<std::size_t>(m.rows()));
  std::sort(perm.begin(), perm.end());
  for (index_t r = 0; r < m.rows(); ++r)
    ASSERT_EQ(perm[static_cast<std::size_t>(r)], r);

  // Lossless round trip and SpMV agreement with the CSR reference.
  EXPECT_EQ(sell.to_csr(), m);
  const auto x = random_x(m.cols(), 0xce11ULL);
  std::vector<double> expect(static_cast<std::size_t>(m.rows()));
  std::vector<double> y(static_cast<std::size_t>(m.rows()), -7.0);
  spmv_reference(m, x, expect);
  sell.spmv(x, y);
  for (index_t r = 0; r < m.rows(); ++r)
    ASSERT_LT(rel_err(y[static_cast<std::size_t>(r)],
                      expect[static_cast<std::size_t>(r)]),
              1e-10)
        << "C=" << c << " sigma=" << sigma << " row " << r;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SellProperties,
    ::testing::Combine(
        ::testing::Values(MatrixFamily::kPowerLaw, MatrixFamily::kBanded,
                          MatrixFamily::kUniformRandom),
        ::testing::Values(index_t{1}, index_t{4}, index_t{32}),
        // 0 stands for sigma == C (no sorting); 97 is prime, so slices
        // straddle window boundaries for every C > 1; 10'000 exceeds the
        // row count: one global sort window.
        ::testing::Values(index_t{0}, index_t{97}, index_t{10000})));

TEST(SellProperties, HostileShapes) {
  // Empty rows, one fully dense row, and a sigma that does not divide the
  // row count must all survive conversion, validate() and SpMV.
  const index_t n = 64;
  std::vector<index_t> row_ptr(static_cast<std::size_t>(n) + 1, 0);
  std::vector<index_t> cols;
  std::vector<double> vals;
  for (index_t c = 0; c < n; ++c) {
    cols.push_back(c);
    vals.push_back(1.0 + 0.25 * static_cast<double>(c));
  }
  // Row 17 owns every column; rows 20 and 21 get one entry; rest empty.
  for (index_t r = 0; r < n; ++r) {
    index_t len = 0;
    if (r == 17) len = n;
    if (r == 20 || r == 21) len = 1;
    row_ptr[static_cast<std::size_t>(r) + 1] =
        row_ptr[static_cast<std::size_t>(r)] + len;
  }
  cols.insert(cols.end(), {3, 5});
  vals.insert(vals.end(), {-2.0, 4.0});
  Csr<double> m(n, n, std::move(row_ptr), std::move(cols), std::move(vals));
  m.validate();

  const auto x = random_x(n, 0xdeadULL);
  std::vector<double> expect(static_cast<std::size_t>(n));
  spmv_reference(m, x, expect);
  for (auto [c, sigma] : {std::pair<index_t, index_t>{4, 12},
                          {8, 24},
                          {32, 40},
                          {5, 7}}) {
    const auto sell = Sell<double>::from_csr(m, c, sigma);
    sell.validate();
    EXPECT_EQ(sell.to_csr(), m) << "C=" << c;
    std::vector<double> y(static_cast<std::size_t>(n), -1.0);
    sell.spmv(x, y);
    for (index_t r = 0; r < n; ++r)
      ASSERT_LT(rel_err(y[static_cast<std::size_t>(r)],
                        expect[static_cast<std::size_t>(r)]),
                1e-10)
          << "C=" << c << " sigma=" << sigma << " row " << r;
  }
}

TEST(EdgeCases, SingleEntryMatrixAllFormats) {
  Csr<double> m(1, 1, {0, 1}, {0}, {2.5});
  std::vector<double> x = {2.0};
  for (Format f : kAllFormats) {
    const auto any = AnyMatrix<double>::build(f, m);
    std::vector<double> y(1);
    any.spmv(x, y);
    EXPECT_DOUBLE_EQ(y[0], 5.0) << format_name(f);
  }
}

TEST(EdgeCases, AllRowsEmptyExceptLast) {
  Csr<double> m(5, 3, {0, 0, 0, 0, 0, 2}, {0, 2}, {1.0, 2.0});
  std::vector<double> x = {1.0, 1.0, 1.0};
  for (Format f : kAllFormats) {
    const auto any = AnyMatrix<double>::build(f, m);
    std::vector<double> y(5, -1.0);
    any.spmv(x, y);
    for (int r = 0; r < 4; ++r) EXPECT_DOUBLE_EQ(y[r], 0.0) << format_name(f);
    EXPECT_DOUBLE_EQ(y[4], 3.0) << format_name(f);
  }
}

TEST(EdgeCases, FullyDenseRow) {
  // One row owning every column stresses ELL width and CSR5 flags.
  const index_t n = 100;
  std::vector<index_t> row_ptr = {0, n, n + 1};
  std::vector<index_t> cols(static_cast<std::size_t>(n) + 1);
  std::vector<double> vals(static_cast<std::size_t>(n) + 1, 1.0);
  for (index_t c = 0; c < n; ++c) cols[static_cast<std::size_t>(c)] = c;
  cols.back() = 0;
  Csr<double> m(2, n, std::move(row_ptr), std::move(cols), std::move(vals));
  std::vector<double> x(static_cast<std::size_t>(n), 1.0);
  for (Format f : kAllFormats) {
    const auto any = AnyMatrix<double>::build(f, m);
    std::vector<double> y(2);
    any.spmv(x, y);
    EXPECT_DOUBLE_EQ(y[0], static_cast<double>(n)) << format_name(f);
    EXPECT_DOUBLE_EQ(y[1], 1.0) << format_name(f);
  }
}

}  // namespace
}  // namespace spmvml
