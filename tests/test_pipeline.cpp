// End-to-end pipeline test: small corpus -> labels -> 80/20 split ->
// train XGBoost -> held-out accuracy beats chance; indirect classification
// with tolerance is at least as accurate as without.
#include <gtest/gtest.h>

#include <map>

#include "common/error.hpp"
#include "core/format_selector.hpp"
#include "core/indirect.hpp"
#include "ml/metrics.hpp"

namespace spmvml {
namespace {

const LabeledCorpus& shared_corpus() {
  static const LabeledCorpus corpus =
      collect_corpus(make_corpus_plan(0.06, 2018));  // ~140 matrices
  return corpus;
}

TEST(Pipeline, HeldOutAccuracyBeatsMajority) {
  const auto study = make_classification_study(
      shared_corpus(), 0, Precision::kDouble, kAllFormats,
      FeatureSet::kSet12);
  const auto split = ml::train_test_split(study.data, 0.2, 1);

  auto model = make_classifier(ModelKind::kXgboost, /*fast=*/true);
  model->fit(split.train.x, split.train.labels);
  const double acc =
      ml::accuracy(split.test.labels, model->predict_batch(split.test.x));

  std::map<int, int> counts;
  for (int label : split.test.labels) ++counts[label];
  int majority = 0;
  for (const auto& [l, c] : counts) majority = std::max(majority, c);
  const double baseline = static_cast<double>(majority) /
                          static_cast<double>(split.test.labels.size());
  EXPECT_GT(acc, baseline);
  EXPECT_GT(acc, 0.4);  // far above 1/7 chance on 7 formats
}

TEST(Pipeline, RicherFeaturesDoNotHurt) {
  // Feature sets 1+2 should beat set 1 alone (the paper's core finding).
  auto accuracy_for = [&](FeatureSet set) {
    const auto study = make_classification_study(
        shared_corpus(), 1, Precision::kDouble, kAllFormats, set);
    const auto split = ml::train_test_split(study.data, 0.2, 3);
    auto model = make_classifier(ModelKind::kXgboost, true);
    model->fit(split.train.x, split.train.labels);
    return ml::accuracy(split.test.labels, model->predict_batch(split.test.x));
  };
  EXPECT_GE(accuracy_for(FeatureSet::kSet12) + 0.03,
            accuracy_for(FeatureSet::kSet1));
}

TEST(Pipeline, IndirectToleranceAccuracyMonotoneInTolerance) {
  const auto study = make_classification_study(
      shared_corpus(), 0, Precision::kDouble, kAllFormats,
      FeatureSet::kSet123);
  PerfModel model(RegressorKind::kXgboost, FeatureSet::kSet123, kAllFormats,
                  true);
  model.fit(shared_corpus(), 0, Precision::kDouble);
  IndirectSelector selector(std::move(model));

  std::vector<int> chosen;
  for (std::size_t i = 0; i < shared_corpus().size(); ++i) {
    const Format f = selector.select(shared_corpus().records[i].features);
    const auto it = std::find(kAllFormats.begin(), kAllFormats.end(), f);
    chosen.push_back(static_cast<int>(it - kAllFormats.begin()));
  }
  const double strict = tolerance_accuracy(chosen, study.times, 0.0);
  const double tolerant = tolerance_accuracy(chosen, study.times, 0.05);
  EXPECT_GE(tolerant, strict);
  EXPECT_GT(tolerant, 0.4);
}

TEST(Pipeline, SelectionSlowdownsMostlySmall) {
  const auto study = make_classification_study(
      shared_corpus(), 0, Precision::kDouble, kAllFormats,
      FeatureSet::kSet12);
  const auto split = ml::train_test_split(study.data, 0.2, 5);
  auto model = make_classifier(ModelKind::kXgboost, true);
  model->fit(split.train.x, split.train.labels);

  // Score on the full study (times rows align with study.data order).
  std::vector<int> chosen;
  for (const auto& row : study.data.x) chosen.push_back(model->predict(row));
  const auto slowdowns = selection_slowdowns(chosen, study.times);
  const auto bins = ml::slowdown_bins(slowdowns);
  // Mispredictions exist but catastrophic (>2x) ones must be rare.
  EXPECT_LT(static_cast<double>(bins.ge_2_0) /
                static_cast<double>(slowdowns.size()),
            0.15);
  EXPECT_LT(ml::mean_slowdown(slowdowns), 1.5);
}

TEST(Pipeline, LabelDistributionHasMultipleWinners) {
  // The corpus must not be degenerate: at least 3 of 7 formats win
  // somewhere, and the top class stays below 80% (otherwise the
  // classification problem the paper studies would be trivial).
  const auto study = make_classification_study(
      shared_corpus(), 0, Precision::kDouble, kAllFormats,
      FeatureSet::kSet1);
  std::map<int, int> counts;
  for (int label : study.data.labels) ++counts[label];
  EXPECT_GE(counts.size(), 3u);
  int majority = 0;
  for (const auto& [l, c] : counts) majority = std::max(majority, c);
  EXPECT_LT(static_cast<double>(majority) /
                static_cast<double>(study.data.labels.size()),
            0.8);
}

}  // namespace
}  // namespace spmvml
