// Metric tests: accuracy, confusion matrix, RME, slowdown binning.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "ml/metrics.hpp"

namespace spmvml::ml {
namespace {

TEST(Accuracy, CountsMatches) {
  EXPECT_DOUBLE_EQ(accuracy({0, 1, 2, 1}, {0, 1, 1, 1}), 0.75);
  EXPECT_DOUBLE_EQ(accuracy({1}, {1}), 1.0);
  EXPECT_DOUBLE_EQ(accuracy({1, 1}, {0, 0}), 0.0);
}

TEST(Accuracy, RejectsMismatchedSizes) {
  EXPECT_THROW(accuracy({1, 2}, {1}), Error);
  EXPECT_THROW(accuracy({}, {}), Error);
}

TEST(Confusion, PlacesCountsAtTruthPredicted) {
  const auto m = confusion_matrix({0, 0, 1, 1, 1}, {0, 1, 1, 1, 0}, 2);
  EXPECT_EQ(m[0][0], 1);
  EXPECT_EQ(m[0][1], 1);
  EXPECT_EQ(m[1][0], 1);
  EXPECT_EQ(m[1][1], 2);
}

TEST(Confusion, RejectsOutOfRangeClass) {
  EXPECT_THROW(confusion_matrix({0, 3}, {0, 0}, 2), Error);
}

TEST(Rme, MatchesHandComputation) {
  // |8-10|/10 = .2, |12-12|/12 = 0 -> mean .1
  EXPECT_DOUBLE_EQ(relative_mean_error({10.0, 12.0}, {8.0, 12.0}), 0.1);
}

TEST(Rme, PerfectPredictionIsZero) {
  EXPECT_DOUBLE_EQ(relative_mean_error({5.0, 7.0}, {5.0, 7.0}), 0.0);
}

TEST(Rme, RejectsNonPositiveMeasured) {
  EXPECT_THROW(relative_mean_error({0.0}, {1.0}), Error);
}

TEST(Slowdown, BinsAreCumulative) {
  const auto b = slowdown_bins({1.0, 1.0, 1.1, 1.3, 1.7, 2.5});
  EXPECT_EQ(b.no_slowdown, 2);
  EXPECT_EQ(b.any_slowdown, 4);
  EXPECT_EQ(b.ge_1_2, 3);
  EXPECT_EQ(b.ge_1_5, 2);
  EXPECT_EQ(b.ge_2_0, 1);
}

TEST(Slowdown, AllPerfect) {
  const auto b = slowdown_bins({1.0, 1.0});
  EXPECT_EQ(b.no_slowdown, 2);
  EXPECT_EQ(b.any_slowdown, 0);
}

TEST(Slowdown, RejectsRatioBelowOne) {
  EXPECT_THROW(slowdown_bins({0.5}), Error);
}

TEST(Slowdown, MeanSlowdown) {
  EXPECT_DOUBLE_EQ(mean_slowdown({1.0, 2.0}), 1.5);
  EXPECT_THROW(mean_slowdown({}), Error);
}

}  // namespace
}  // namespace spmvml::ml
