// Density-image extraction and CNN tests.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "features/image.hpp"
#include "ml/cnn.hpp"
#include "ml/metrics.hpp"
#include "synth/generators.hpp"

namespace spmvml {
namespace {

TEST(DensityImage, DiagonalMatrixLightsDiagonalPixels) {
  // 64x64 identity -> 8x8 image with mass only on the diagonal.
  std::vector<index_t> row_ptr(65), cols(64);
  std::vector<double> vals(64, 1.0);
  for (index_t i = 0; i < 64; ++i) {
    row_ptr[static_cast<std::size_t>(i) + 1] = i + 1;
    cols[static_cast<std::size_t>(i)] = i;
  }
  Csr<double> m(64, 64, std::move(row_ptr), std::move(cols), std::move(vals));
  const auto img = density_image(m, 8);
  ASSERT_EQ(img.size(), 64u);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      if (y == x) {
        EXPECT_GT(img[static_cast<std::size_t>(y * 8 + x)], 0.9f);
      } else {
        EXPECT_FLOAT_EQ(img[static_cast<std::size_t>(y * 8 + x)], 0.0f);
      }
    }
  }
}

TEST(DensityImage, NormalisedToUnitRange) {
  GenSpec spec;
  spec.family = MatrixFamily::kPowerLaw;
  spec.rows = 5000;
  spec.cols = 5000;
  spec.row_mu = 10.0;
  spec.seed = 3;
  const auto img = density_image(generate(spec), 32);
  float mx = 0.0f;
  for (float v : img) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
    mx = std::max(mx, v);
  }
  EXPECT_FLOAT_EQ(mx, 1.0f);
}

TEST(DensityImage, EmptyMatrixIsBlack) {
  Csr<double> m(4, 4, {0, 0, 0, 0, 0}, {}, {});
  for (float v : density_image(m, 8)) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(DensityImage, DistinguishesStructureFamilies) {
  // Banded vs uniform images must differ substantially.
  GenSpec banded;
  banded.family = MatrixFamily::kBanded;
  banded.rows = 4000;
  banded.cols = 4000;
  banded.row_mu = 8;
  banded.seed = 1;
  GenSpec uniform = banded;
  uniform.family = MatrixFamily::kUniformRandom;
  const auto a = density_image(generate(banded), 16);
  const auto b = density_image(generate(uniform), 16);
  double diff = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) diff += std::abs(a[i] - b[i]);
  EXPECT_GT(diff / static_cast<double>(a.size()), 0.1);
}

TEST(Cnn, RejectsBadImageSize) {
  ml::CnnParams p;
  p.image_size = 30;  // not divisible by 4
  EXPECT_THROW(ml::CnnClassifier{p}, Error);
}

TEST(Cnn, LearnsCornerVersusCenterBlobs) {
  // Synthetic task: bright blob in the top-left corner (class 0) vs in
  // the centre (class 1) vs bottom-right (class 2).
  ml::CnnParams p;
  p.image_size = 16;
  p.conv1_channels = 4;
  p.conv2_channels = 8;
  p.hidden = 16;
  p.epochs = 14;
  ml::CnnClassifier cnn(p);

  Rng rng(5);
  auto blob_image = [&](int cy, int cx) {
    std::vector<float> img(16 * 16, 0.0f);
    for (int dy = -2; dy <= 2; ++dy)
      for (int dx = -2; dx <= 2; ++dx) {
        const int y = cy + dy, x = cx + dx;
        if (y >= 0 && y < 16 && x >= 0 && x < 16)
          img[static_cast<std::size_t>(y * 16 + x)] =
              0.7f + 0.3f * static_cast<float>(rng.uniform());
      }
    return img;
  };
  ml::ImageSet images;
  std::vector<int> labels;
  for (int i = 0; i < 240; ++i) {
    const int k = i % 3;
    const int jitter_y = static_cast<int>(rng.uniform_int(-1, 1));
    const int jitter_x = static_cast<int>(rng.uniform_int(-1, 1));
    const int cy = (k == 0 ? 3 : (k == 1 ? 8 : 13)) + jitter_y;
    const int cx = (k == 0 ? 3 : (k == 1 ? 8 : 13)) + jitter_x;
    images.push_back(blob_image(cy, cx));
    labels.push_back(k);
  }
  cnn.fit(images, labels);
  EXPECT_GT(ml::accuracy(labels, cnn.predict_batch(images)), 0.9);
}

TEST(Cnn, ProbabilitiesSumToOne) {
  ml::CnnParams p;
  p.image_size = 8;
  p.conv1_channels = 2;
  p.conv2_channels = 4;
  p.hidden = 8;
  p.epochs = 2;
  ml::CnnClassifier cnn(p);
  ml::ImageSet images;
  std::vector<int> labels;
  Rng rng(6);
  for (int i = 0; i < 40; ++i) {
    std::vector<float> img(64);
    for (auto& v : img) v = static_cast<float>(rng.uniform());
    images.push_back(std::move(img));
    labels.push_back(i % 2);
  }
  cnn.fit(images, labels);
  const auto probs = cnn.predict_proba(images[0]);
  double sum = 0.0;
  for (double v : probs) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(Cnn, PredictBeforeFitThrows) {
  ml::CnnClassifier cnn;
  EXPECT_THROW(cnn.predict(std::vector<float>(32 * 32, 0.0f)), Error);
}

}  // namespace
}  // namespace spmvml
