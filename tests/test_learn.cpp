// Online learning subsystem tests (DESIGN.md §5k): scorecard drain
// cursor, replay-buffer determinism, drift hysteresis, serialized
// registry publishes, the background trainer end to end, and the
// contract that learning mode never perturbs served responses.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "core/format_selector.hpp"
#include "core/perf_model.hpp"
#include "core/study.hpp"
#include "learn/drift.hpp"
#include "learn/replay.hpp"
#include "learn/trainer.hpp"
#include "serve/model_registry.hpp"
#include "serve/request.hpp"
#include "serve/scorecard.hpp"
#include "serve/service.hpp"
#include "sparse/mmio.hpp"
#include "synth/corpus.hpp"
#include "synth/generators.hpp"

namespace spmvml {
namespace {

using learn::DriftConfig;
using learn::DriftDetector;
using learn::OnlineTrainer;
using learn::ReplayBuffer;
using learn::TrainerConfig;
using serve::ModelRegistry;
using serve::Scorecard;
using serve::ScorecardEntry;
using serve::Service;
using serve::ServiceConfig;

/// Fabricated but distinct feature vector for sample `i`; the learning
/// loop only ever sees features through these arrays, so no corpus or
/// matrix generation is needed for the model-level tests.
std::array<double, kNumFeatures> fab_features(int i) {
  std::array<double, kNumFeatures> f{};
  f[kNRows] = 1000.0 + 13.0 * i;
  f[kNCols] = 1000.0 + 7.0 * i;
  f[kNnzTot] = 5000.0 + 31.0 * i;
  f[kNnzMu] = 5.0 + 0.1 * i;
  f[kNnzFrac] = 0.5;
  f[kNnzMax] = 12.0 + i;
  f[kNnzMin] = 1.0;
  f[kNnzSigma] = 2.5;
  f[kNnzbTot] = 4000.0 + 17.0 * i;
  f[kNnzbMu] = 4.0;
  f[kNnzbSigma] = 1.5;
  f[kNnzbMax] = 9.0;
  f[kNnzbMin] = 1.0;
  f[kSnzbMu] = 1.25;
  f[kSnzbSigma] = 0.5;
  f[kSnzbMax] = 6.0;
  f[kSnzbMin] = 1.0;
  return f;
}

ScorecardEntry fab_entry(int i, Format chosen, double measured_gflops,
                         double predicted_gflops = 0.0, bool probe = false) {
  ScorecardEntry e;
  e.features = fab_features(i);
  e.features_hash = serve::features_fingerprint(e.features);
  e.chosen = chosen;
  e.predicted_best = chosen;
  e.measured_gflops = measured_gflops;
  e.predicted_gflops = predicted_gflops;
  e.model_version = 1;
  e.probe = probe;
  return e;
}

/// Decision-tree selector fitted on fabricated rows (no corpus); every
/// sample is labeled `label` within kAllFormats.
std::shared_ptr<const FormatSelector> fab_selector(Format label) {
  auto s = std::make_shared<FormatSelector>(ModelKind::kDecisionTree,
                                            FeatureSet::kSet12, kAllFormats,
                                            /*fast=*/true);
  const int idx = static_cast<int>(
      std::find(kAllFormats.begin(), kAllFormats.end(), label) -
      kAllFormats.begin());
  ml::Matrix x;
  std::vector<int> y;
  for (int i = 0; i < 24; ++i) {
    FeatureVector fv;
    fv.values = fab_features(i);
    x.push_back(fv.select(FeatureSet::kSet12));
    y.push_back(idx);
  }
  s->fit(x, y);
  return s;
}

/// Per-format perf model over {CSR, ELL} where CSR runs at `csr_gflops`
/// and ELL at `ell_gflops` on every fabricated sample.
std::shared_ptr<const PerfModel> fab_perf(double csr_gflops,
                                          double ell_gflops) {
  const std::vector<Format> formats = {Format::kCsr, Format::kEll};
  auto p = std::make_shared<PerfModel>(RegressorKind::kDecisionTree,
                                       FeatureSet::kSet12, formats,
                                       /*fast=*/true);
  std::vector<ml::Matrix> x(2);
  std::vector<std::vector<double>> y(2);
  for (int i = 0; i < 24; ++i) {
    FeatureVector fv;
    fv.values = fab_features(i);
    const double nnz = fv[kNnzTot];
    for (int k = 0; k < 2; ++k) {
      const double g = (k == 0) ? csr_gflops : ell_gflops;
      x[static_cast<std::size_t>(k)].push_back(fv.select(FeatureSet::kSet12));
      y[static_cast<std::size_t>(k)].push_back(
          seconds_to_regression_target(2.0 * nnz / (g * 1e9)));
    }
  }
  p->fit_samples(x, y);
  return p;
}

// --- Scorecard drain cursor ---------------------------------------------

TEST(LearnScorecard, DrainSinceSurvivesWraparound) {
  Scorecard sc(8);
  for (int i = 0; i < 20; ++i)
    sc.record(fab_entry(i, Format::kCsr, 1.0 + i));

  // Cursor 0 after 20 records into a capacity-8 ring: 12 entries were
  // evicted before the caller drained, the retained 8 come back oldest
  // first with the cursor advanced past everything seen.
  const auto d = sc.drain_since(0);
  EXPECT_EQ(d.next_seq, 20u);
  EXPECT_EQ(d.dropped, 12u);
  ASSERT_EQ(d.entries.size(), 8u);
  for (std::size_t k = 0; k < d.entries.size(); ++k)
    EXPECT_DOUBLE_EQ(d.entries[k].measured_gflops, 1.0 + 12.0 + k);

  // A caught-up cursor pays for new entries only.
  const auto empty = sc.drain_since(d.next_seq);
  EXPECT_EQ(empty.next_seq, 20u);
  EXPECT_EQ(empty.dropped, 0u);
  EXPECT_TRUE(empty.entries.empty());

  sc.record(fab_entry(20, Format::kEll, 77.0));
  const auto one = sc.drain_since(d.next_seq);
  EXPECT_EQ(one.next_seq, 21u);
  ASSERT_EQ(one.entries.size(), 1u);
  EXPECT_EQ(one.entries[0].chosen, Format::kEll);
  EXPECT_EQ(one.dropped, 0u);
}

TEST(LearnScorecard, ChunkedDrainsSeeEveryRetainedEntryOnce) {
  // Interleave records and drains at an awkward cadence; the
  // concatenated drains must equal the full entry stream (no entry is
  // ever evicted under this cursor because the ring is large enough).
  Scorecard sc(64);
  std::vector<double> seen;
  std::uint64_t cursor = 0;
  int next = 0;
  for (int round = 0; round < 10; ++round) {
    for (int k = 0; k < 3 + round; ++k)
      sc.record(fab_entry(next, Format::kCsr, 100.0 + next)), ++next;
    const auto d = sc.drain_since(cursor);
    cursor = d.next_seq;
    EXPECT_EQ(d.dropped, 0u);
    for (const auto& e : d.entries) seen.push_back(e.measured_gflops);
  }
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(next));
  for (int i = 0; i < next; ++i) EXPECT_DOUBLE_EQ(seen[i], 100.0 + i);
}

TEST(LearnScorecard, ProbeEntriesStayOutOfWindowAggregates) {
  Scorecard sc(16);
  // Two scored hits, one scored miss, and a pile of probes.
  auto hit = fab_entry(0, Format::kCsr, 10.0, 10.0);
  sc.record(hit);
  sc.record(hit);
  auto miss = fab_entry(1, Format::kCsr, 10.0, 5.0);
  miss.predicted_best = Format::kEll;
  sc.record(miss);
  for (int i = 0; i < 5; ++i) {
    auto probe = fab_entry(10 + i, Format::kHyb, 1.0, 99.0, /*probe=*/true);
    probe.predicted_best = Format::kCoo;  // would be a miss if counted
    sc.record(probe);
  }
  const auto s = sc.summary();
  EXPECT_EQ(s.total, 8u);
  EXPECT_EQ(s.window, 8u);
  EXPECT_EQ(s.scored, 3u);
  EXPECT_NEAR(s.accuracy, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.rme, (0.0 + 0.0 + 0.5) / 3.0, 1e-12);

  // Probes also stay out of eviction-time aggregate subtraction: wrap
  // the ring fully with probes and the scored aggregates zero out
  // instead of going negative.
  for (int i = 0; i < 16; ++i)
    sc.record(fab_entry(50 + i, Format::kCsr, 1.0, 1.0, /*probe=*/true));
  const auto after = sc.summary();
  EXPECT_EQ(after.scored, 0u);
  EXPECT_EQ(after.accuracy, 0.0);
}

// --- Replay buffer -------------------------------------------------------

TEST(ReplayBuffer, MergesEntriesByFingerprintIntoPerFormatMeans) {
  ReplayBuffer buf(8, /*seed=*/1);
  buf.add(fab_entry(0, Format::kCsr, 10.0));
  buf.add(fab_entry(0, Format::kCsr, 14.0));
  buf.add(fab_entry(0, Format::kEll, 3.0, 0.0, /*probe=*/true));
  ASSERT_EQ(buf.size(), 1u);
  const auto s = buf.snapshot().front();
  EXPECT_EQ(s.measured_formats(), 2);
  EXPECT_DOUBLE_EQ(s.mean_gflops(Format::kCsr), 12.0);
  EXPECT_DOUBLE_EQ(s.mean_gflops(Format::kEll), 3.0);
  EXPECT_EQ(s.best_format(), Format::kCsr);
  EXPECT_EQ(buf.stats().observations, 3u);
  EXPECT_EQ(buf.stats().inserted, 1u);
}

TEST(ReplayBuffer, SkipsEntriesWithoutMeasurement) {
  ReplayBuffer buf(8, 1);
  buf.add(fab_entry(0, Format::kCsr, 0.0));
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.stats().skipped, 1u);
}

TEST(ReplayBuffer, DeterministicAcrossDrainCadence) {
  // Same seed + same entry stream => identical contents no matter how
  // the stream was chunked (the satellite determinism contract). The
  // stream overfills a capacity-16 buffer so eviction (the only RNG
  // consumer) is exercised heavily.
  const std::uint64_t seed = 2018;
  std::vector<ScorecardEntry> stream;
  for (int i = 0; i < 150; ++i)
    stream.push_back(fab_entry(i, i % 2 == 0 ? Format::kCsr : Format::kHyb,
                               1.0 + i % 7));

  ReplayBuffer one_by_one(16, seed);
  for (const auto& e : stream) one_by_one.add(e);

  for (const std::size_t chunk : {3u, 7u, 50u, 150u}) {
    ReplayBuffer chunked(16, seed);
    // Chunking is a no-op for add order; this models a poller draining
    // the scorecard at a different cadence.
    for (std::size_t at = 0; at < stream.size(); at += chunk) {
      const std::size_t end = std::min(at + chunk, stream.size());
      for (std::size_t k = at; k < end; ++k) chunked.add(stream[k]);
    }
    EXPECT_EQ(chunked.snapshot(), one_by_one.snapshot())
        << "cadence " << chunk << " diverged";
    EXPECT_EQ(chunked.stats().evictions, one_by_one.stats().evictions);
  }
  EXPECT_GT(one_by_one.stats().evictions, 0u);
  EXPECT_EQ(one_by_one.size(), 16u);
}

TEST(ReplayBuffer, RepeatFingerprintsNeverConsumeRng) {
  // Re-observing retained fingerprints at a full buffer merges in place;
  // the next eviction victim must be unaffected by how many merges
  // happened in between.
  const std::uint64_t seed = 7;
  ReplayBuffer a(4, seed);
  ReplayBuffer b(4, seed);
  for (int i = 0; i < 4; ++i) {
    a.add(fab_entry(i, Format::kCsr, 5.0));
    b.add(fab_entry(i, Format::kCsr, 5.0));
  }
  for (int r = 0; r < 10; ++r) b.add(fab_entry(r % 4, Format::kEll, 2.0));
  a.add(fab_entry(100, Format::kCsr, 9.0));
  b.add(fab_entry(100, Format::kCsr, 9.0));
  // Same victim slot in both: the new fingerprint landed identically.
  std::vector<std::uint64_t> ha, hb;
  for (const auto& s : a.snapshot()) ha.push_back(s.features_hash);
  for (const auto& s : b.snapshot()) hb.push_back(s.features_hash);
  EXPECT_EQ(ha, hb);
}

// --- Drift detector ------------------------------------------------------

TEST(DriftDetector, TripsAfterConsecutiveBadWindowsAndRearmsAfterClear) {
  DriftConfig cfg;
  cfg.window = 4;
  cfg.rme_threshold = 0.5;
  cfg.accuracy_floor = 0.5;
  cfg.trip_after = 2;
  cfg.clear_after = 2;
  DriftDetector det(cfg);

  const auto feed_window = [&det](bool bad) {
    bool fired = false;
    for (int i = 0; i < 4; ++i) {
      auto e = fab_entry(i, Format::kCsr, 10.0, bad ? 1.0 : 10.0);
      if (bad) e.predicted_best = Format::kEll;
      fired = det.observe(e) || fired;
    }
    return fired;
  };

  EXPECT_FALSE(feed_window(false));  // clean
  EXPECT_FALSE(feed_window(true));   // 1st bad window: not yet
  EXPECT_TRUE(feed_window(true));    // 2nd: rising edge fires once
  EXPECT_FALSE(feed_window(true));   // latched: no refire
  EXPECT_FALSE(feed_window(false));  // 1st clean: still latched
  EXPECT_FALSE(feed_window(true));   // bad again: clean streak reset...
  EXPECT_FALSE(feed_window(false));
  EXPECT_FALSE(feed_window(false));  // 2nd consecutive clean: unlatch
  EXPECT_FALSE(feed_window(true));
  EXPECT_TRUE(feed_window(true));    // re-armed detector fires again

  const auto s = det.stats();
  EXPECT_EQ(s.trips, 2u);
  EXPECT_EQ(s.windows, 10u);
  EXPECT_TRUE(s.tripped);
  EXPECT_NEAR(s.last_rme, 0.9, 1e-12);
  EXPECT_EQ(s.last_accuracy, 0.0);
}

TEST(DriftDetector, TransientBurstDoesNotTrip) {
  DriftConfig cfg;
  cfg.window = 4;
  cfg.trip_after = 2;
  DriftDetector det(cfg);
  bool fired = false;
  for (int round = 0; round < 6; ++round) {
    const bool bad = round % 2 == 1;  // alternating: never 2 consecutive
    for (int i = 0; i < 4; ++i) {
      auto e = fab_entry(i, Format::kCsr, 10.0, bad ? 1.0 : 10.0);
      if (bad) e.predicted_best = Format::kEll;
      fired = det.observe(e) || fired;
    }
  }
  EXPECT_FALSE(fired);
  EXPECT_EQ(det.stats().trips, 0u);
}

// --- Registry publish serialization -------------------------------------

TEST(LearnRegistry, StaleCandidateIsDiscardedNotInstalled) {
  ModelRegistry registry;
  EXPECT_EQ(registry.install(fab_selector(Format::kCsr)), 1u);
  // A candidate pinned to a version that is no longer live is rejected.
  EXPECT_THROW(registry.install(fab_selector(Format::kEll), nullptr,
                                /*expected_version=*/0),
               Error);
  EXPECT_EQ(registry.version(), 1u);
  const auto history = registry.history();
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0].action, "install");
  EXPECT_EQ(history[1].action, "discard");
  EXPECT_EQ(history[1].version, 0u);
}

TEST(LearnRegistry, ConcurrentPublishersExactlyOneWins) {
  // The satellite race: admin swap vs background trainer publishing
  // concurrently, both pinned to the current version. Exactly one must
  // install; the loser is discarded, never half-installed. Run under
  // tsan via the Learn filter in check.sh.
  ModelRegistry registry;
  registry.install(fab_selector(Format::kCsr));
  constexpr int kRounds = 8;
  for (int round = 0; round < kRounds; ++round) {
    const std::uint64_t live = registry.version();
    std::atomic<int> wins{0}, losses{0};
    std::vector<std::thread> publishers;
    for (int t = 0; t < 2; ++t) {
      publishers.emplace_back([&, t] {
        try {
          registry.install(
              fab_selector(t == 0 ? Format::kCsr : Format::kEll), nullptr,
              live);
          wins.fetch_add(1);
        } catch (const Error&) {
          losses.fetch_add(1);
        }
      });
    }
    for (auto& p : publishers) p.join();
    EXPECT_EQ(wins.load(), 1);
    EXPECT_EQ(losses.load(), 1);
    EXPECT_EQ(registry.version(), live + 1);
    // The live bundle is always whole: a selector that answers.
    ASSERT_NE(registry.current(), nullptr);
    FeatureVector probe;
    probe.values = fab_features(3);
    (void)registry.current()->selector->select(probe);
  }
  // Journal: 1 seed install + kRounds wins + kRounds discards, and the
  // version sequence the installs carry is gapless.
  const auto history = registry.history();
  std::uint64_t installs = 0, discards = 0, last_version = 0;
  for (const auto& ev : history) {
    if (ev.action == "install") {
      ++installs;
      EXPECT_EQ(ev.version, last_version + 1);
      last_version = ev.version;
    } else if (ev.action == "discard") {
      ++discards;
      EXPECT_EQ(ev.version, 0u);
    }
  }
  EXPECT_EQ(installs, static_cast<std::uint64_t>(kRounds) + 1);
  EXPECT_EQ(discards, static_cast<std::uint64_t>(kRounds));
}

// --- PerfModel online refit ----------------------------------------------

TEST(LearnPerfModel, FitSamplesPredictsTheTrainingRegime) {
  const auto perf = fab_perf(/*csr_gflops=*/10.0, /*ell_gflops=*/1.0);
  FeatureVector fv;
  fv.values = fab_features(5);
  EXPECT_LT(perf->predict_seconds(fv, Format::kCsr),
            perf->predict_seconds(fv, Format::kEll));
}

// --- Background trainer --------------------------------------------------

TrainerConfig quick_trainer_config() {
  TrainerConfig cfg;
  cfg.enabled = true;
  cfg.replay_capacity = 256;
  cfg.poll_every_s = 0.01;
  cfg.min_samples = 12;
  cfg.min_labeled = 4;
  cfg.min_retrain_gap_s = 0.0;
  cfg.holdout_fraction = 0.3;
  cfg.seed = 2018;
  cfg.drift.window = 4;
  cfg.drift.rme_threshold = 0.3;
  cfg.drift.trip_after = 1;
  cfg.drift.clear_after = 1;
  return cfg;
}

/// Feed one fabricated sample's traffic: a scored entry (the served
/// format) plus a shadow probe of the other format, exactly like the
/// service's materialize path would.
void feed_sample(Scorecard& sc, int i, double csr_gflops, double ell_gflops,
                 double predicted_csr_gflops) {
  auto scored = fab_entry(i, Format::kCsr, csr_gflops, predicted_csr_gflops);
  if (predicted_csr_gflops < csr_gflops / 2.0)
    scored.predicted_best = Format::kEll;  // the live model disagrees
  sc.record(scored);
  sc.record(fab_entry(i, Format::kEll, ell_gflops, 0.0, /*probe=*/true));
}

TEST(LearnTrainer, DriftTriggersRetrainAndValidatedSwap) {
  Scorecard sc(1024);
  ModelRegistry registry;
  // Live bundle trained for an inverted world: believes ELL is 10x
  // faster than CSR. Measured traffic says the opposite.
  registry.install(fab_selector(Format::kEll), fab_perf(1.0, 10.0));
  const std::uint64_t live_version = registry.version();

  ThreadPool pool(2);
  OnlineTrainer trainer(quick_trainer_config(), sc, registry, pool);

  // 30 distinct matrices, CSR measured 10 GFLOPS vs ELL 1 — while the
  // live model predicts 1 GFLOPS for CSR (rel err 0.9 => drift).
  for (int i = 0; i < 30; ++i)
    feed_sample(sc, i, /*csr=*/10.0, /*ell=*/1.0, /*predicted_csr=*/1.0);

  OnlineTrainer::Stats stats;
  for (int spin = 0; spin < 1000; ++spin) {
    trainer.poke();
    stats = trainer.stats();
    if (stats.swaps >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  trainer.stop();
  stats = trainer.stats();

  ASSERT_GE(stats.swaps, 1u) << "drift never produced a published swap";
  EXPECT_GE(stats.drift.trips, 1u);
  EXPECT_GT(registry.version(), live_version);
  EXPECT_EQ(stats.last_published_version, registry.version());
  // Candidate beat the live bundle on the holdout slice.
  EXPECT_GE(stats.last_live_regret, stats.last_candidate_regret);

  // The published bundle learned the measured world: CSR now predicts
  // faster than ELL, and the journal's last event is a clean install.
  const auto bundle = registry.current();
  ASSERT_NE(bundle, nullptr);
  ASSERT_NE(bundle->perf, nullptr);
  FeatureVector fv;
  fv.values = fab_features(2);
  EXPECT_LT(bundle->perf->predict_seconds(fv, Format::kCsr),
            bundle->perf->predict_seconds(fv, Format::kEll));
  const auto history = registry.history();
  ASSERT_FALSE(history.empty());
  EXPECT_EQ(history.back().action, "install");
  EXPECT_EQ(history.back().version, registry.version());
}

TEST(LearnTrainer, CandidateThatCannotBeatLiveIsDiscarded) {
  Scorecard sc(1024);
  ModelRegistry registry;
  // Live bundle already matches the measured world; a periodic retrain
  // produces an equivalent candidate, which must NOT be published
  // (strictly-better contract).
  registry.install(fab_selector(Format::kCsr), fab_perf(10.0, 1.0));
  const std::uint64_t live_version = registry.version();

  ThreadPool pool(2);
  auto cfg = quick_trainer_config();
  cfg.drift.rme_threshold = 1e9;  // drift can never fire
  cfg.retrain_every_s = 0.02;     // periodic retrain does
  OnlineTrainer trainer(cfg, sc, registry, pool);

  for (int i = 0; i < 30; ++i)
    feed_sample(sc, i, 10.0, 1.0, /*predicted_csr=*/10.0);

  OnlineTrainer::Stats stats;
  for (int spin = 0; spin < 1000; ++spin) {
    trainer.poke();
    stats = trainer.stats();
    if (stats.discards + stats.aborted >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  trainer.stop();
  stats = trainer.stats();

  EXPECT_GE(stats.retrains, 1u);
  EXPECT_GE(stats.discards, 1u) << "equivalent candidate was not discarded";
  EXPECT_EQ(stats.swaps, 0u);
  EXPECT_EQ(registry.version(), live_version);
  EXPECT_EQ(stats.drift.trips, 0u);
}

TEST(LearnTrainer, DisabledTrainerIsInert) {
  Scorecard sc(64);
  ModelRegistry registry;
  registry.install(fab_selector(Format::kCsr));
  ThreadPool pool(1);
  TrainerConfig cfg;  // enabled = false
  OnlineTrainer trainer(cfg, sc, registry, pool);
  sc.record(fab_entry(0, Format::kCsr, 5.0));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  trainer.stop();
  const auto stats = trainer.stats();
  EXPECT_FALSE(stats.enabled);
  EXPECT_EQ(stats.polls, 0u);
  EXPECT_EQ(stats.replay.observations, 0u);
  EXPECT_EQ(registry.version(), 1u);
}

// --- Learn-off/-on response contract -------------------------------------

std::string canonical_json(serve::Response r) {
  r.queue_ms = r.latency_ms = r.server_ms = 0.0;
  r.est_wait_ms = 0.0;
  r.stage_features_ms = r.stage_classify_ms = 0.0;
  r.stage_regress_ms = r.stage_finalize_ms = 0.0;
  r.convert_ms = r.spmv_ms = 0.0;
  r.measured_gflops = 0.0;
  r.batch = 0;
  return serve::to_json(r);
}

TEST(LearnContract, LearningModeDoesNotPerturbResponses) {
  // The satellite contract, run under tsan: serving with the learning
  // loop off is byte-identical (modulo wall-clock fields) to serving
  // with it on while no retrain publishes — shadow probes and the poll
  // thread must never leak into responses. With learn off the trainer
  // is never even constructed, which is the "build without the
  // subsystem" half of the guarantee.
  const std::string path = "test_learn_contract.tmp.mtx";
  write_matrix_market(path, generate(make_small_plan(1, 4242).specs[0]));

  // A full-format perf model so indirect mode and probes both work.
  auto full_perf = [] {
    auto p = std::make_shared<PerfModel>(RegressorKind::kDecisionTree,
                                         FeatureSet::kSet12, kAllFormats,
                                         /*fast=*/true);
    std::vector<ml::Matrix> x(kAllFormats.size());
    std::vector<std::vector<double>> y(kAllFormats.size());
    for (int i = 0; i < 24; ++i) {
      FeatureVector fv;
      fv.values = fab_features(i);
      for (std::size_t k = 0; k < kAllFormats.size(); ++k) {
        x[k].push_back(fv.select(FeatureSet::kSet12));
        y[k].push_back(seconds_to_regression_target(
            2.0 * fv[kNnzTot] / ((2.0 + static_cast<double>(k)) * 1e9)));
      }
    }
    p->fit_samples(x, y);
    return std::shared_ptr<const PerfModel>(p);
  }();

  const std::vector<std::string> lines = {
      R"({"id":"c1","mode":"select","matrix":")" + path +
          R"(","materialize":true})",
      R"({"id":"c2","mode":"indirect","matrix":")" + path +
          R"(","materialize":true})",
      R"({"id":"c3","mode":"select","matrix":")" + path + R"("})",
      R"({"id":"c4","mode":"predict","matrix":")" + path + R"("})",
      R"({"id":"c5","mode":"select","matrix":")" + path +
          R"(","materialize":true})",
  };

  const auto run_pass = [&](bool learn_on) {
    ModelRegistry registry;
    registry.install(fab_selector(Format::kCsr), full_perf);
    ServiceConfig cfg;
    cfg.threads = 2;
    cfg.max_batch = 8;
    cfg.max_delay_ms = 0.2;
    if (learn_on) {
      cfg.learn.enabled = true;
      cfg.learn.poll_every_s = 0.005;
      cfg.learn.drift.rme_threshold = 1e9;  // never drifts
      cfg.learn.retrain_every_s = 0.0;      // never retrains periodically
    }
    std::vector<std::string> out;
    std::size_t probes = 0;
    {
      Service service(cfg, registry);
      for (const auto& line : lines) {
        const auto parsed = serve::parse_request_line(line);
        out.push_back(canonical_json(service.call(parsed.request)));
      }
      for (const auto& e : service.scorecard().entries())
        probes += e.probe ? 1 : 0;
      service.shutdown();
    }
    if (learn_on) {
      // The learning plumbing really ran: every materialize request
      // shadow-probed one extra format.
      EXPECT_EQ(probes, 3u);
    } else {
      EXPECT_EQ(probes, 0u);
    }
    return out;
  };

  const auto off = run_pass(false);
  const auto on = run_pass(true);
  std::remove(path.c_str());
  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i)
    EXPECT_EQ(off[i], on[i]) << "response " << i << " diverged";
}

}  // namespace
}  // namespace spmvml
