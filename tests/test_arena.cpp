// ConversionArena tests (DESIGN.md §5g): warm slot reuse must produce
// matrices identical to fresh AnyMatrix::build, and — the property the
// arena exists for — re-converting a same-shaped (or smaller) matrix
// must perform ZERO heap allocations. Proven with a replacement global
// operator new that counts every allocation in the process; each gtest
// case runs in its own process (gtest_discover_tests), so the counter
// only sees this file's work. A threaded case exercises one-arena-per-
// thread under tsan.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "sparse/arena.hpp"
#include "sparse/spmv.hpp"
#include "synth/generators.hpp"

namespace {

std::atomic<std::size_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

}  // namespace

// Counting replacements for the whole test binary. The nothrow variants
// must be replaced alongside the plain ones: libstdc++'s temporary
// buffers (stable_sort) allocate nothrow, and under ASan the intercepted
// nothrow new would otherwise mismatch our free-based delete. Aligned
// overloads are deliberately not replaced: the sparse buffers are plain
// vectors of double/index_t and never use them.
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace spmvml {
namespace {

Csr<double> test_matrix(index_t rows, double mu, std::uint64_t seed) {
  GenSpec spec;
  spec.family = MatrixFamily::kUniformRandom;
  spec.rows = rows;
  spec.cols = rows;
  spec.row_mu = mu;
  spec.row_cv = 0.6;
  spec.seed = seed;
  return generate(spec);
}

/// Allocations performed by `fn`.
template <typename F>
std::size_t allocs_during(F&& fn) {
  const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
  fn();
  return g_alloc_count.load(std::memory_order_relaxed) - before;
}

TEST(Arena, WarmConversionEqualsFreshBuild) {
  const auto csr = test_matrix(200, 9.0, 42);
  ConversionArena<double> arena;
  for (const Format f : kAllFormats) {
    arena.convert(f, csr);  // cold: allocates
    const AnyMatrix<double>& warm = arena.convert(f, csr);
    EXPECT_EQ(warm, AnyMatrix<double>::build(f, csr)) << format_name(f);
  }
}

TEST(Arena, WarmConversionAllocatesNothing) {
  const auto csr = test_matrix(300, 12.0, 7);
  ConversionArena<double> arena;
  for (const Format f : kAllFormats) {
    arena.convert(f, csr);
    arena.convert(f, csr);  // second round settles any growth
    const std::size_t n = allocs_during([&] { arena.convert(f, csr); });
    EXPECT_EQ(n, 0u) << format_name(f) << " warm convert allocated";
  }
}

TEST(Arena, ShrinkingMatrixReusesCapacity) {
  const auto big = test_matrix(400, 16.0, 11);
  const auto small = test_matrix(150, 6.0, 12);
  ConversionArena<double> arena;
  for (const Format f : kAllFormats) {
    arena.convert(f, big);
    const std::size_t n = allocs_during([&] { arena.convert(f, small); });
    EXPECT_EQ(n, 0u) << format_name(f) << " shrink convert allocated";
    EXPECT_EQ(arena.convert(f, small), AnyMatrix<double>::build(f, small))
        << format_name(f);
  }
}

TEST(Arena, GrowingMatrixStaysCorrect) {
  const auto small = test_matrix(100, 5.0, 21);
  const auto big = test_matrix(350, 14.0, 22);
  ConversionArena<double> arena;
  for (const Format f : kAllFormats) {
    arena.convert(f, small);
    EXPECT_EQ(arena.convert(f, big), AnyMatrix<double>::build(f, big))
        << format_name(f);
  }
}

TEST(Arena, SlotsAreIndependent) {
  // Converting one format must not disturb another format's slot.
  const auto a = test_matrix(120, 8.0, 31);
  const auto b = test_matrix(90, 4.0, 32);
  ConversionArena<double> arena;
  const AnyMatrix<double>& ell = arena.convert(Format::kEll, a);
  arena.convert(Format::kCsr5, b);
  arena.convert(Format::kHyb, b);
  EXPECT_EQ(ell, AnyMatrix<double>::build(Format::kEll, a));
}

TEST(Arena, ClearDropsCachedState) {
  const auto csr = test_matrix(150, 7.0, 51);
  ConversionArena<double> arena;
  for (const Format f : kAllFormats) arena.convert(f, csr);
  arena.clear();
  // Conversions after clear() are cold again but still correct.
  for (const Format f : kAllFormats)
    EXPECT_EQ(arena.convert(f, csr), AnyMatrix<double>::build(f, csr))
        << format_name(f);
}

TEST(Arena, FormatSwitchOnSameSlotStaysCorrect) {
  // The serving path rebuilds whatever format the selector picks; a slot
  // is per-format so switching formats uses different slots, but the
  // shared CSR5 scratch is reused across rebuilds — interleave to prove
  // no cross-talk.
  const auto a = test_matrix(180, 10.0, 61);
  const auto b = test_matrix(180, 10.0, 62);
  ConversionArena<double> arena;
  arena.convert(Format::kCsr5, a);
  arena.convert(Format::kMergeCsr, a);
  const AnyMatrix<double>& c5 = arena.convert(Format::kCsr5, b);
  EXPECT_EQ(c5, AnyMatrix<double>::build(Format::kCsr5, b));
  const AnyMatrix<double>& mc = arena.convert(Format::kMergeCsr, b);
  EXPECT_EQ(mc, AnyMatrix<double>::build(Format::kMergeCsr, b));
}

TEST(Arena, OneArenaPerThreadIsRaceFree) {
  // The serving design: each worker owns a thread_local arena. Run four
  // threads with private arenas over shared (const) CSR inputs — tsan
  // must see no races, and every thread's results must match fresh
  // builds.
  const auto a = test_matrix(160, 9.0, 71);
  const auto b = test_matrix(110, 5.0, 72);
  std::vector<int> failures(4, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      ConversionArena<double> arena;
      for (int round = 0; round < 8; ++round) {
        const Csr<double>& csr = (round + t) % 2 == 0 ? a : b;
        for (const Format f : kAllFormats) {
          if (!(arena.convert(f, csr) == AnyMatrix<double>::build(f, csr)))
            ++failures[static_cast<std::size_t>(t)];
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < 4; ++t) EXPECT_EQ(failures[static_cast<std::size_t>(t)], 0);
}

TEST(Arena, SellConvertParamsReachTheSlot) {
  // The (C, sigma) knobs handed to the arena must be the ones the SELL
  // slot converts with — and warm rebuilds under custom params must stay
  // allocation-free like every other slot.
  const auto csr = test_matrix(220, 10.0, 91);
  ConvertParams params;
  params.sell_c = 8;
  params.sell_sigma = 24;
  ConversionArena<double> arena(params);
  EXPECT_EQ(arena.convert_params(), params);

  const AnyMatrix<double>& any = arena.convert(Format::kSell, csr);
  const auto& sell = any.get<Sell<double>>();
  EXPECT_EQ(sell.slice_height(), 8);
  EXPECT_EQ(sell.sort_window(), 24);
  EXPECT_EQ(sell, Sell<double>::from_csr(csr, 8, 24));

  // Different tuning than the defaults actually changes the layout.
  const auto def = Sell<double>::from_csr(csr);
  EXPECT_NE(sell.slice_height(), def.slice_height());

  arena.convert(Format::kSell, csr);  // settle growth
  const std::size_t n =
      allocs_during([&] { arena.convert(Format::kSell, csr); });
  EXPECT_EQ(n, 0u) << "warm SELL convert with custom params allocated";
}

TEST(Arena, SpmvOnWarmSlotMatchesFresh) {
  // End-to-end: the y computed from an arena-built matrix is bitwise the
  // y from a fresh build (the serving materialize path depends on this).
  const auto csr = test_matrix(250, 11.0, 81);
  std::vector<double> x(static_cast<std::size_t>(csr.cols()));
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = 1.0 + 0.01 * static_cast<double>(i % 13);
  ConversionArena<double> arena;
  std::vector<double> y_warm(static_cast<std::size_t>(csr.rows()));
  std::vector<double> y_fresh(y_warm.size());
  for (const Format f : kAllFormats) {
    arena.convert(f, csr);
    arena.convert(f, csr).spmv(x, y_warm);
    AnyMatrix<double>::build(f, csr).spmv(x, y_fresh);
    EXPECT_EQ(y_warm, y_fresh) << format_name(f);
  }
}

}  // namespace
}  // namespace spmvml
