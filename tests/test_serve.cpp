// Online serving subsystem tests: sharded LRU feature cache, versioned
// model registry with atomic hot-swap, and the micro-batching Service —
// admission control, deadline degradation, and the contract that batched
// serving matches one-shot library calls bit for bit.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/obs/trace.hpp"
#include "core/format_selector.hpp"
#include "core/perf_model.hpp"
#include "serve/feature_cache.hpp"
#include "serve/model_registry.hpp"
#include "serve/request.hpp"
#include "serve/scorecard.hpp"
#include "serve/service.hpp"
#include "sparse/mmio.hpp"
#include "sparse/spmv.hpp"
#include "synth/corpus.hpp"
#include "synth/generators.hpp"

namespace spmvml {
namespace {

using serve::FeatureCache;
using serve::ModelRegistry;
using serve::Request;
using serve::RequestMode;
using serve::Response;
using serve::Service;
using serve::ServiceConfig;

const LabeledCorpus& shared_corpus() {
  static const LabeledCorpus corpus = collect_corpus(make_small_plan(40, 321));
  return corpus;
}

std::shared_ptr<const FormatSelector> tree_selector() {
  static const auto selector = [] {
    auto s = std::make_shared<FormatSelector>(
        ModelKind::kDecisionTree, FeatureSet::kSet12, kAllFormats,
        /*fast=*/true);
    s->fit(shared_corpus(), 0, Precision::kDouble);
    return std::shared_ptr<const FormatSelector>(s);
  }();
  return selector;
}

std::shared_ptr<const PerfModel> tree_perf() {
  static const auto perf = [] {
    auto p = std::make_shared<PerfModel>(RegressorKind::kDecisionTree,
                                         FeatureSet::kSet12, kAllFormats,
                                         /*fast=*/true);
    p->fit(shared_corpus(), 0, Precision::kDouble);
    return std::shared_ptr<const PerfModel>(p);
  }();
  return perf;
}

/// Inline feature payload (17 values) from a deterministic synthetic
/// matrix; `variant` perturbs the generator seed.
std::vector<double> sample_features(int variant) {
  GenSpec spec = make_small_plan(1, 1000 + variant).specs[0];
  const FeatureVector f = extract_features(generate(spec));
  return {f.values.begin(), f.values.end()};
}

Request inline_request(const std::string& id, RequestMode mode, int variant) {
  Request req;
  req.id = id;
  req.mode = mode;
  req.features = sample_features(variant);
  return req;
}

/// A temp Matrix Market file that removes itself.
struct TempMatrixFile {
  std::string path;
  explicit TempMatrixFile(const std::string& name, int seed) : path(name) {
    write_matrix_market(path, generate(make_small_plan(1, seed).specs[0]));
  }
  ~TempMatrixFile() { std::remove(path.c_str()); }
};

serve::CachedFeatures tagged(double tag) {
  serve::CachedFeatures v;
  v.features.values[0] = tag;
  return v;
}

/// Restores the global per-request sampling rate on scope exit so a
/// failing test cannot leak sampling into unrelated tests.
struct TraceSampleGuard {
  ~TraceSampleGuard() { serve::set_trace_sample(0); }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// --- Feature cache -------------------------------------------------------

TEST(ServeCache, HitReturnsStoredValue) {
  FeatureCache cache(8, 1);
  cache.put(42, tagged(7.0));
  const auto got = cache.get(42);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->features.values[0], 7.0);
  EXPECT_FALSE(cache.get(43).has_value());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.size, 1u);
}

TEST(ServeCache, LruEvictionOrder) {
  FeatureCache cache(3, /*shards=*/1);  // one shard => strict global LRU
  cache.put(1, tagged(1));
  cache.put(2, tagged(2));
  cache.put(3, tagged(3));
  EXPECT_TRUE(cache.get(1).has_value());  // refresh 1; LRU order: 2,3,1
  cache.put(4, tagged(4));                // evicts 2
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_TRUE(cache.get(1).has_value());
  EXPECT_TRUE(cache.get(3).has_value());
  EXPECT_TRUE(cache.get(4).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().size, 3u);
}

TEST(ServeCache, PutRefreshesExistingKey) {
  FeatureCache cache(2, 1);
  cache.put(1, tagged(1));
  cache.put(2, tagged(2));
  cache.put(1, tagged(10));  // refresh, not insert: 1 becomes MRU
  cache.put(3, tagged(3));   // evicts 2
  ASSERT_TRUE(cache.get(1).has_value());
  EXPECT_EQ(cache.get(1)->features.values[0], 10.0);
  EXPECT_FALSE(cache.get(2).has_value());
}

TEST(ServeCache, CapacityZeroDisables) {
  FeatureCache cache(0);
  cache.put(1, tagged(1));
  EXPECT_FALSE(cache.get(1).has_value());
  EXPECT_EQ(cache.stats().capacity, 0u);
}

TEST(ServeCache, ShardedConcurrentAccess) {
  FeatureCache cache(128, 8);
  constexpr int kThreads = 8, kOps = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t] {
      for (int i = 0; i < kOps; ++i) {
        const auto key = static_cast<std::uint64_t>((t * kOps + i) % 300);
        if (i % 3 == 0) cache.put(key, tagged(static_cast<double>(key)));
        const auto got = cache.get(key);
        if (got.has_value())
          EXPECT_EQ(got->features.values[0], static_cast<double>(key));
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_LE(stats.size, stats.capacity);
}

TEST(ServeCache, ContentHashDistinguishesMatrices) {
  const auto a = generate(make_small_plan(1, 11).specs[0]);
  const auto b = generate(make_small_plan(1, 22).specs[0]);
  EXPECT_EQ(serve::matrix_content_hash(a), serve::matrix_content_hash(a));
  EXPECT_NE(serve::matrix_content_hash(a), serve::matrix_content_hash(b));
}

// --- Model registry ------------------------------------------------------

TEST(ServeRegistry, InstallAssignsMonotonicVersions) {
  ModelRegistry registry;
  EXPECT_EQ(registry.version(), 0u);
  EXPECT_EQ(registry.current(), nullptr);
  EXPECT_EQ(registry.install(tree_selector()), 1u);
  EXPECT_EQ(registry.install(tree_selector(), tree_perf()), 2u);
  EXPECT_EQ(registry.version(), 2u);
  ASSERT_NE(registry.current(), nullptr);
  EXPECT_EQ(registry.current()->version, 2u);
  EXPECT_NE(registry.current()->perf, nullptr);
}

TEST(ServeRegistry, OldBundleSurvivesSwap) {
  ModelRegistry registry;
  registry.install(tree_selector());
  const auto pinned = registry.current();
  registry.install(tree_selector(), tree_perf());
  // The pinned copy is untouched: in-flight batches finish on the model
  // they started with.
  EXPECT_EQ(pinned->version, 1u);
  EXPECT_EQ(pinned->perf, nullptr);
  EXPECT_EQ(registry.current()->version, 2u);
}

TEST(ServeRegistry, RejectsNullSelector) {
  ModelRegistry registry;
  EXPECT_THROW(registry.install(nullptr), Error);
  EXPECT_EQ(registry.version(), 0u);
}

TEST(ServeRegistry, InstallFilesRoundTrips) {
  const std::string path = "test_serve_selector.tmp.model";
  {
    std::ofstream out(path);
    tree_selector()->save(out);
  }
  ModelRegistry registry;
  EXPECT_EQ(registry.install_files(path), 1u);
  EXPECT_EQ(registry.current()->selector->feature_set(), FeatureSet::kSet12);
  std::remove(path.c_str());
}

TEST(ServeRegistry, CorruptFileKeepsPreviousVersionLive) {
  ModelRegistry registry;
  registry.install(tree_selector());

  const std::string path = "test_serve_corrupt.tmp.model";
  {
    std::ofstream out(path);
    out << "this is not a model file\n";
  }
  try {
    registry.install_files(path);
    FAIL() << "expected Error(kModelFormat)";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kModelFormat);
  }
  std::remove(path.c_str());

  try {
    registry.install_files("test_serve_no_such_file.model");
    FAIL() << "expected Error(kIo)";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kIo);
  }
  // Failed installs never unpublish the live bundle.
  EXPECT_EQ(registry.version(), 1u);
  ASSERT_NE(registry.current(), nullptr);
  EXPECT_EQ(registry.current()->version, 1u);
}

// --- Request parsing -----------------------------------------------------

TEST(ServeRequest, ParsesSelectWithMatrix) {
  const auto p = serve::parse_request_line(
      R"({"id": "r1", "mode": "select", "matrix": "a.mtx", "mem_budget_gb": 4})");
  ASSERT_FALSE(p.is_admin);
  EXPECT_EQ(p.request.id, "r1");
  EXPECT_EQ(p.request.mode, RequestMode::kSelect);
  EXPECT_EQ(p.request.matrix_path, "a.mtx");
  EXPECT_EQ(p.request.mem_budget_gb, 4.0);
}

TEST(ServeRequest, ParsesInlineFeaturesAndDeadline) {
  std::string features = "[";
  for (int i = 0; i < kNumFeatures; ++i)
    features += (i > 0 ? "," : "") + std::to_string(i + 1);
  features += "]";
  const auto p = serve::parse_request_line(
      R"({"id": "r2", "mode": "indirect", "features": )" + features +
      R"(, "deadline_ms": 2.5})");
  EXPECT_EQ(p.request.mode, RequestMode::kIndirect);
  ASSERT_EQ(p.request.features.size(), static_cast<std::size_t>(kNumFeatures));
  EXPECT_EQ(p.request.features[2], 3.0);
  EXPECT_EQ(p.request.deadline_ms, 2.5);
}

TEST(ServeRequest, ParsesAdminSwap) {
  const auto p = serve::parse_request_line(
      R"({"cmd": "swap", "id": "a1", "model": "sel.model", "perf_model": "p.model"})");
  ASSERT_TRUE(p.is_admin);
  EXPECT_EQ(p.admin.cmd, "swap");
  EXPECT_EQ(p.admin.model_path, "sel.model");
  EXPECT_EQ(p.admin.perf_model_path, "p.model");
}

TEST(ServeRequest, RejectsMalformedLines) {
  const char* bad[] = {
      "not json",
      R"({"id": "x"})",                                     // no matrix/features
      R"({"id": "x", "mode": "wat", "matrix": "a.mtx"})",   // unknown mode
      R"({"id": "x", "features": [1, 2, 3]})",              // wrong arity
      R"({"id": "x", "matrix": "a.mtx", "deadline_ms": -1})",
      R"({"cmd": "reload"})",                               // unknown admin
  };
  for (const char* line : bad) {
    try {
      serve::parse_request_line(line);
      FAIL() << "expected Error(kParse) for: " << line;
    } catch (const Error& e) {
      EXPECT_EQ(e.category(), ErrorCategory::kParse) << line;
    }
  }
}

TEST(ServeRequest, MaterializeNeedsMatrixAndNonPredictMode) {
  // Inline features carry no CSR master copy to convert, and predict
  // picks no format — both combinations are schema errors, not runtime
  // surprises.
  const char* bad[] = {
      R"({"id": "x", "features": [1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17], "materialize": true})",
      R"({"id": "x", "mode": "predict", "matrix": "a.mtx", "materialize": true})",
  };
  for (const char* line : bad) {
    try {
      serve::parse_request_line(line);
      FAIL() << "expected Error(kParse) for: " << line;
    } catch (const Error& e) {
      EXPECT_EQ(e.category(), ErrorCategory::kParse) << line;
    }
  }
  const auto ok = serve::parse_request_line(
      R"({"id": "x", "mode": "select", "matrix": "a.mtx", "materialize": true})");
  EXPECT_TRUE(ok.request.materialize);
}

TEST(ServeRequest, ResponseJsonCarriesMaterializeFieldsOnlyWhenSet) {
  Response r;
  r.id = "m";
  r.ok = true;
  EXPECT_EQ(serve::to_json(r).find("materialized"), std::string::npos);
  r.materialized = true;
  r.convert_ms = 0.5;
  r.format_bytes = 4096;
  const std::string json = serve::to_json(r);
  EXPECT_NE(json.find("\"materialized\":true"), std::string::npos);
  EXPECT_NE(json.find("\"format_bytes\":4096"), std::string::npos);
  EXPECT_NE(json.find("convert_ms"), std::string::npos);
}

TEST(ServeRequest, ClientIdPassesThroughAndGeneratedIdsAreDistinct) {
  const auto with_id = serve::parse_request_line(
      R"({"id": "client-7", "mode": "select", "matrix": "a.mtx"})");
  EXPECT_EQ(with_id.request.id, "client-7");

  // No id: the parser assigns a stable `srv-<seq>` so every downstream
  // stage (and the response) can still name the request.
  const auto anon_a =
      serve::parse_request_line(R"({"mode": "select", "matrix": "a.mtx"})");
  const auto anon_b =
      serve::parse_request_line(R"({"mode": "select", "matrix": "a.mtx"})");
  EXPECT_EQ(anon_a.request.id.rfind("srv-", 0), 0u) << anon_a.request.id;
  EXPECT_EQ(anon_b.request.id.rfind("srv-", 0), 0u) << anon_b.request.id;
  EXPECT_NE(anon_a.request.id, anon_b.request.id);
}

TEST(ServeRequest, ParsesAdminStatsAndRejectsModelPathsOnIt) {
  const auto p = serve::parse_request_line(R"({"cmd": "stats", "id": "s1"})");
  ASSERT_TRUE(p.is_admin);
  EXPECT_EQ(p.admin.cmd, "stats");
  EXPECT_EQ(p.admin.id, "s1");
  EXPECT_TRUE(p.admin.model_path.empty());

  // `stats` is read-only: a model path on it is a schema error, not a
  // silently ignored field.
  try {
    serve::parse_request_line(R"({"cmd": "stats", "model": "sel.model"})");
    FAIL() << "expected Error(kParse)";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kParse);
  }
}

TEST(ServeRequest, TraceSamplingDecisionIsMadeAtParse) {
  TraceSampleGuard guard;
  serve::set_trace_sample(1);  // every request
  const auto on =
      serve::parse_request_line(R"({"mode": "select", "matrix": "a.mtx"})");
  EXPECT_TRUE(on.request.trace_sampled);
  serve::set_trace_sample(0);  // off
  const auto off =
      serve::parse_request_line(R"({"mode": "select", "matrix": "a.mtx"})");
  EXPECT_FALSE(off.request.trace_sampled);
}

TEST(ServeRequest, ResponseJsonCarriesServerMsAndStageBreakdown) {
  Response r;
  r.id = "t";
  r.ok = true;
  EXPECT_EQ(serve::to_json(r).find("server_ms"), std::string::npos);
  EXPECT_EQ(serve::to_json(r).find("stage_ms"), std::string::npos);

  r.server_ms = 1.5;
  r.has_stage_ms = true;
  r.stage_features_ms = 0.25;
  const std::string json = serve::to_json(r);
  EXPECT_NE(json.find("\"server_ms\":1.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"stage_ms\":{\"features\":0.25"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"finalize\":0"), std::string::npos) << json;

  // Error responses are stamped too: a rejected line still reports how
  // long the server spent on it.
  Response bad;
  bad.ok = false;
  bad.error = "parse: nope";
  bad.server_ms = 0.125;
  EXPECT_NE(serve::to_json(bad).find("\"server_ms\":0.125"),
            std::string::npos);
}

TEST(ServeRequest, ResponseJsonCarriesMeasuredAndPredictedGflops) {
  Response r;
  r.id = "g";
  r.ok = true;
  r.materialized = true;
  r.spmv_ms = 0.5;
  r.measured_gflops = 12.5;
  const std::string json = serve::to_json(r);
  EXPECT_NE(json.find("\"spmv_ms\":0.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"measured_gflops\":12.5"), std::string::npos) << json;
  // No perf model => no predicted_gflops key (0 would read as a claim).
  EXPECT_EQ(json.find("predicted_gflops"), std::string::npos) << json;
  r.predicted_gflops = 10.0;
  EXPECT_NE(serve::to_json(r).find("\"predicted_gflops\":10"),
            std::string::npos);
}

TEST(ServeRequest, ResponseJsonIsSingleLine) {
  Response r;
  r.id = "he \"quoted\" llo";
  r.ok = true;
  r.format = Format::kEll;
  r.predicted = Format::kEll;
  const std::string json = serve::to_json(r);
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"format\":\"ELL\""), std::string::npos);
}

// --- Prediction scorecard ------------------------------------------------

TEST(ServeScorecard, SummaryAggregatesHitsRegretAndRme) {
  serve::Scorecard sc(4);
  serve::ScorecardEntry hit;
  hit.features_hash = 1;
  hit.chosen = Format::kEll;
  hit.predicted_best = Format::kEll;
  hit.predicted_gflops = 2.0;
  hit.measured_gflops = 1.0;  // |2-1|/1 = 1.0 relative error
  sc.record(hit);

  serve::ScorecardEntry miss;
  miss.features_hash = 2;
  miss.chosen = Format::kCsr;
  miss.predicted_best = Format::kEll;
  miss.regret = 0.5;  // no gflops on either side: excluded from RME
  sc.record(miss);

  const auto s = sc.summary();
  EXPECT_EQ(s.total, 2u);
  EXPECT_EQ(s.window, 2u);
  EXPECT_DOUBLE_EQ(s.accuracy, 0.5);
  EXPECT_DOUBLE_EQ(s.mean_regret, 0.25);
  EXPECT_DOUBLE_EQ(s.rme, 1.0);
}

TEST(ServeScorecard, RingEvictsOldestAndKeepsWindowAggregatesExact) {
  serve::Scorecard sc(2);
  serve::ScorecardEntry a;
  a.features_hash = 1;
  a.chosen = a.predicted_best = Format::kEll;  // a hit, later evicted
  serve::ScorecardEntry b;
  b.features_hash = 2;
  b.chosen = Format::kCsr;
  b.predicted_best = Format::kEll;
  b.regret = 1.0;
  serve::ScorecardEntry c = b;
  c.features_hash = 3;
  c.regret = 3.0;
  sc.record(a);
  sc.record(b);
  sc.record(c);  // capacity 2: evicts a

  const auto entries = sc.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].features_hash, 2u);  // oldest first
  EXPECT_EQ(entries[1].features_hash, 3u);

  // The incremental aggregates must reflect only the retained window:
  // the evicted hit no longer counts toward accuracy.
  const auto s = sc.summary();
  EXPECT_EQ(s.total, 3u);
  EXPECT_EQ(s.window, 2u);
  EXPECT_DOUBLE_EQ(s.accuracy, 0.0);
  EXPECT_DOUBLE_EQ(s.mean_regret, 2.0);
}

TEST(ServeScorecard, FeaturesFingerprintIsStableAndBitSensitive) {
  const std::vector<double> values = {1.0, 2.0, 3.5, -4.0};
  const std::uint64_t h = serve::features_fingerprint(values);
  EXPECT_EQ(serve::features_fingerprint(values), h);

  // One ULP of drift in one feature must change the fingerprint: the
  // retraining join key relies on bit-identity, not approximate equality.
  std::vector<double> nudged = values;
  nudged[1] = std::nextafter(nudged[1], 3.0);
  EXPECT_NE(serve::features_fingerprint(nudged), h);
  EXPECT_NE(serve::features_fingerprint({}), h);
}

// --- Service -------------------------------------------------------------

ServiceConfig quick_config() {
  ServiceConfig cfg;
  cfg.threads = 2;
  cfg.max_batch = 8;
  cfg.max_delay_ms = 0.2;
  return cfg;
}

TEST(ServeService, MatchesOneShotPredictions) {
  // The acceptance contract: batched serving answers are byte-identical
  // to one-shot library calls for the same matrix + model. MLP exercises
  // the batched forward pass (bitwise-equal by design).
  auto mlp = std::make_shared<FormatSelector>(ModelKind::kMlp,
                                              FeatureSet::kSet12, kAllFormats,
                                              /*fast=*/true);
  mlp->fit(shared_corpus(), 0, Precision::kDouble);
  ModelRegistry registry;
  registry.install(mlp, tree_perf());
  Service service(quick_config(), registry);

  TempMatrixFile file("test_serve_oneshot.tmp.mtx", 4242);
  const auto matrix = read_matrix_market(file.path);
  const auto features = extract_features(matrix);

  Request req;
  req.id = "sel";
  req.mode = RequestMode::kSelect;
  req.matrix_path = file.path;
  const Response sel = service.call(req);
  ASSERT_TRUE(sel.ok) << sel.error;
  EXPECT_EQ(sel.format, mlp->select(features));
  EXPECT_FALSE(sel.degraded);

  req.id = "prd";
  req.mode = RequestMode::kPredict;
  const Response prd = service.call(req);
  ASSERT_TRUE(prd.ok) << prd.error;
  ASSERT_EQ(prd.predicted_us.size(), tree_perf()->formats().size());
  for (std::size_t k = 0; k < prd.predicted_us.size(); ++k) {
    const auto [f, us] = prd.predicted_us[k];
    EXPECT_EQ(f, tree_perf()->formats()[k]);
    EXPECT_EQ(us, tree_perf()->predict_seconds(features, f) * 1e6);
  }

  req.id = "ind";
  req.mode = RequestMode::kIndirect;
  const Response ind = service.call(req);
  ASSERT_TRUE(ind.ok) << ind.error;
  // Indirect = argmin of the same regressor outputs.
  Format best = prd.predicted_us.front().first;
  double best_us = prd.predicted_us.front().second;
  for (const auto& [f, us] : prd.predicted_us)
    if (us < best_us) { best = f; best_us = us; }
  EXPECT_EQ(ind.format, best);
  EXPECT_FALSE(ind.degraded);
}

TEST(ServeService, MicroBatchingCoalesces) {
  ModelRegistry registry;
  registry.install(tree_selector());
  ServiceConfig cfg;
  cfg.threads = 1;
  cfg.max_batch = 8;
  cfg.max_delay_ms = 250.0;  // generous window: all 8 land in one batch
  Service service(cfg, registry);

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 8; ++i)
    futures.push_back(service.submit(
        inline_request("b" + std::to_string(i), RequestMode::kSelect, i)));
  for (auto& f : futures) {
    const Response r = f.get();
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.batch, 8u);
  }
}

TEST(ServeService, AdmissionControlRejectsWhenFull) {
  ModelRegistry registry;
  registry.install(tree_selector());
  ServiceConfig cfg;
  cfg.threads = 1;
  cfg.max_batch = 100;        // never fills
  cfg.max_delay_ms = 1000.0;  // window held open while we overflow the queue
  cfg.queue_capacity = 2;
  Service service(cfg, registry);

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 6; ++i)
    futures.push_back(service.submit(
        inline_request("a" + std::to_string(i), RequestMode::kSelect, 0)));
  service.shutdown();  // closes the window; the two queued requests run

  int accepted = 0, rejected = 0;
  for (auto& f : futures) {
    const Response r = f.get();
    if (r.ok) {
      ++accepted;
    } else {
      EXPECT_NE(r.error.find("rejected"), std::string::npos);
      ++rejected;
    }
  }
  EXPECT_EQ(accepted, 2);
  EXPECT_EQ(rejected, 4);
  EXPECT_EQ(service.counters().rejected, 4u);
}

TEST(ServeService, DeadlineExpiryDegradesToDirect) {
  ModelRegistry registry;
  registry.install(tree_selector(), tree_perf());
  Service service(quick_config(), registry);

  Request req = inline_request("d1", RequestMode::kIndirect, 3);
  req.deadline_ms = 1e-6;  // expired by the time the batch picks it up
  const Response r = service.call(req);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.degraded);
  EXPECT_TRUE(r.predicted_us.empty());  // regressor pass was skipped
  // The degraded answer is the direct classifier's pick.
  FeatureVector f;
  std::copy(req.features.begin(), req.features.end(), f.values.begin());
  EXPECT_EQ(r.format, tree_selector()->select(f));
  EXPECT_EQ(service.counters().degraded, 1u);
}

TEST(ServeService, NoPerfModelDegradesIndirectAndFailsPredict) {
  ModelRegistry registry;
  registry.install(tree_selector());  // no regressors
  Service service(quick_config(), registry);

  const Response ind =
      service.call(inline_request("i1", RequestMode::kIndirect, 1));
  ASSERT_TRUE(ind.ok) << ind.error;
  EXPECT_TRUE(ind.degraded);

  const Response prd =
      service.call(inline_request("p1", RequestMode::kPredict, 1));
  EXPECT_FALSE(prd.ok);
  EXPECT_NE(prd.error.find("perf model"), std::string::npos);
}

TEST(ServeService, TinyMemoryBudgetFallsBackToCsr) {
  ModelRegistry registry;
  registry.install(tree_selector(), tree_perf());
  Service service(quick_config(), registry);
  TempMatrixFile file("test_serve_budget.tmp.mtx", 99);

  Request req;
  req.id = "m1";
  req.mode = RequestMode::kSelect;
  req.matrix_path = file.path;
  req.mem_budget_gb = 1e-9;  // ~1 byte: nothing fits, CSR floor applies
  const Response r = service.call(req);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.format, Format::kCsr);
  EXPECT_TRUE(r.fallback);
}

TEST(ServeService, MaterializeBuildsChosenFormatInArena) {
  ModelRegistry registry;
  registry.install(tree_selector(), tree_perf());
  Service service(quick_config(), registry);
  TempMatrixFile file("test_serve_materialize.tmp.mtx", 314);
  const auto matrix = read_matrix_market(file.path);

  Request req;
  req.id = "mat1";
  req.mode = RequestMode::kSelect;
  req.matrix_path = file.path;
  req.materialize = true;
  const Response r = service.call(req);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.materialized);
  EXPECT_GE(r.convert_ms, 0.0);
  // The reported footprint is the bytes() of the format it served.
  EXPECT_EQ(r.format_bytes, AnyMatrix<double>::build(r.format, matrix).bytes());

  // Indirect requests materialize the argmin pick the same way.
  req.id = "mat2";
  req.mode = RequestMode::kIndirect;
  const Response ind = service.call(req);
  ASSERT_TRUE(ind.ok) << ind.error;
  EXPECT_TRUE(ind.materialized);
  EXPECT_EQ(ind.format_bytes,
            AnyMatrix<double>::build(ind.format, matrix).bytes());
}

TEST(ServeService, NonMaterializeRequestReportsNoConversion) {
  ModelRegistry registry;
  registry.install(tree_selector());
  Service service(quick_config(), registry);
  TempMatrixFile file("test_serve_nomat.tmp.mtx", 315);

  Request req;
  req.id = "nm1";
  req.mode = RequestMode::kSelect;
  req.matrix_path = file.path;
  const Response r = service.call(req);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.materialized);
  EXPECT_EQ(r.format_bytes, 0);
}

TEST(ServeService, FeatureCacheHitsOnRepeatMatrix) {
  ModelRegistry registry;
  registry.install(tree_selector());
  Service service(quick_config(), registry);
  TempMatrixFile file("test_serve_cache.tmp.mtx", 17);

  Request req;
  req.id = "c1";
  req.mode = RequestMode::kSelect;
  req.matrix_path = file.path;
  const Response first = service.call(req);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_FALSE(first.cache_hit);
  req.id = "c2";
  const Response second = service.call(req);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.format, first.format);
  EXPECT_GE(service.cache().stats().hits, 1u);
}

TEST(ServeService, BadMatrixPathYieldsIoError) {
  ModelRegistry registry;
  registry.install(tree_selector());
  Service service(quick_config(), registry);

  Request req;
  req.id = "x1";
  req.mode = RequestMode::kSelect;
  req.matrix_path = "test_serve_does_not_exist.mtx";
  const Response r = service.call(req);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("io"), std::string::npos);
  EXPECT_EQ(service.counters().failed, 1u);
}

TEST(ServeService, EmptyRegistryFailsCleanly) {
  ModelRegistry registry;  // nothing installed
  Service service(quick_config(), registry);
  const Response r =
      service.call(inline_request("e1", RequestMode::kSelect, 0));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("no model"), std::string::npos);
}

TEST(ServeService, ShutdownDrainsAcceptedRequests) {
  ModelRegistry registry;
  registry.install(tree_selector());
  ServiceConfig cfg;
  cfg.threads = 1;
  cfg.max_batch = 4;
  cfg.max_delay_ms = 500.0;  // requests would otherwise sit in the window
  std::vector<std::future<Response>> futures;
  {
    Service service(cfg, registry);
    for (int i = 0; i < 3; ++i)
      futures.push_back(service.submit(
          inline_request("s" + std::to_string(i), RequestMode::kSelect, i)));
  }  // destructor shuts down and drains
  for (auto& f : futures) EXPECT_TRUE(f.get().ok);
}

TEST(ServeService, HotSwapUnderLoad) {
  auto selector_b = std::make_shared<FormatSelector>(
      ModelKind::kDecisionTree, FeatureSet::kSet1, kAllFormats,
      /*fast=*/true);
  selector_b->fit(shared_corpus(), 0, Precision::kDouble);

  ModelRegistry registry;
  registry.install(tree_selector(), tree_perf());
  ServiceConfig cfg;
  cfg.threads = 4;
  cfg.max_batch = 8;
  cfg.max_delay_ms = 0.1;
  Service service(cfg, registry);

  constexpr int kClients = 4, kPerClient = 50, kSwaps = 10;
  std::atomic<int> failures{0};
  std::atomic<bool> monotonic{true};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::uint64_t last = 0;
      for (int k = 0; k < kPerClient; ++k) {
        const Response r = service.call(inline_request(
            "h" + std::to_string(c) + "-" + std::to_string(k),
            k % 2 == 0 ? RequestMode::kSelect : RequestMode::kIndirect,
            k % 5));
        if (!r.ok) failures.fetch_add(1);
        // No torn reads: every response carries a version that exists,
        // and versions never move backwards for a single client.
        if (r.model_version < last || r.model_version == 0 ||
            r.model_version > kSwaps + 1)
          monotonic.store(false);
        last = r.model_version;
      }
    });
  }
  std::thread swapper([&] {
    for (int s = 0; s < kSwaps; ++s) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      registry.install(s % 2 == 0 ? selector_b : tree_selector(), tree_perf());
    }
  });
  for (auto& t : clients) t.join();
  swapper.join();
  service.shutdown();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(monotonic.load());
  EXPECT_EQ(registry.version(), static_cast<std::uint64_t>(kSwaps) + 1);
  EXPECT_EQ(service.counters().served,
            static_cast<std::uint64_t>(kClients) * kPerClient);
}

// --- Request-scoped telemetry --------------------------------------------

TEST(ServeService, MaterializeRecordsScorecardEntry) {
  ModelRegistry registry;
  registry.install(tree_selector(), tree_perf());
  Service service(quick_config(), registry);
  TempMatrixFile file("test_serve_scorecard.tmp.mtx", 2718);

  Request req;
  req.id = "sc1";
  req.mode = RequestMode::kIndirect;
  req.matrix_path = file.path;
  req.materialize = true;
  const Response r = service.call(req);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_TRUE(r.materialized);
  EXPECT_GT(r.measured_gflops, 0.0);
  EXPECT_GT(r.spmv_ms, 0.0);

  const auto summary = service.scorecard().summary();
  EXPECT_EQ(summary.total, 1u);
  EXPECT_EQ(summary.window, 1u);
  const auto entries = service.scorecard().entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].chosen, r.format);
  EXPECT_EQ(entries[0].measured_gflops, r.measured_gflops);
  EXPECT_EQ(entries[0].model_version, r.model_version);
  EXPECT_NE(entries[0].features_hash, 0u);

  // Non-materialize requests never touch the scorecard: there is no
  // measured truth to compare against.
  req.id = "sc2";
  req.materialize = false;
  ASSERT_TRUE(service.call(req).ok);
  EXPECT_EQ(service.scorecard().summary().total, 1u);
}

TEST(ServeService, SampledRequestEmitsIdTaggedSpans) {
  ModelRegistry registry;
  registry.install(tree_selector(), tree_perf());
  Service service(quick_config(), registry);

  const std::string trace_path = "test_serve_trace.tmp.json";
  obs::trace_start(trace_path);
  Request req = inline_request("traced-req-1", RequestMode::kIndirect, 2);
  req.trace_sampled = true;
  const Response r = service.call(req);
  service.shutdown();
  obs::trace_stop();
  ASSERT_TRUE(r.ok) << r.error;

  const std::string trace = slurp(trace_path);
  std::remove(trace_path.c_str());
  // The sampled request leaves a per-request span trail, each event
  // tagged with the request id (the thing that survives work-stealing).
  EXPECT_NE(trace.find("req.admit"), std::string::npos);
  EXPECT_NE(trace.find("req.queue"), std::string::npos);
  EXPECT_NE(trace.find("req.done"), std::string::npos);
  EXPECT_NE(trace.find("traced-req-1"), std::string::npos);
}

/// Strip the fields that legitimately vary run-to-run (wall-clock
/// timings, batch geometry) so what remains is the semantic payload:
/// ids, formats, predictions, cache/fallback/degrade flags, bytes.
std::string canonical_response_json(Response r) {
  r.queue_ms = r.latency_ms = r.server_ms = 0.0;
  r.est_wait_ms = 0.0;
  r.stage_features_ms = r.stage_classify_ms = 0.0;
  r.stage_regress_ms = r.stage_finalize_ms = 0.0;
  r.convert_ms = r.spmv_ms = 0.0;
  r.measured_gflops = 0.0;
  r.batch = 0;
  return serve::to_json(r);
}

TEST(ServeService, TelemetryDoesNotPerturbResponses) {
  // The non-perturbation contract: running with tracing + 100% sampling
  // must produce byte-identical responses (modulo wall-clock fields) to
  // running with telemetry fully off.
  TraceSampleGuard guard;
  TempMatrixFile file("test_serve_identical.tmp.mtx", 777);
  std::string features = "[";
  {
    const auto f = sample_features(5);
    for (std::size_t i = 0; i < f.size(); ++i) {
      std::ostringstream os;
      os << (i > 0 ? "," : "") << f[i];
      features += os.str();
    }
    features += "]";
  }
  const std::vector<std::string> lines = {
      R"({"id":"t1","mode":"select","matrix":")" + file.path + R"("})",
      R"({"id":"t2","mode":"indirect","matrix":")" + file.path +
          R"(","materialize":true})",
      R"({"id":"t3","mode":"predict","matrix":")" + file.path + R"("})",
      R"({"id":"t4","mode":"indirect","features":)" + features + "}",
      R"({"id":"t5","mode":"select","matrix":")" + file.path + R"("})",
  };
  const std::string trace_path = "test_serve_identical_trace.tmp.json";

  const auto run_pass = [&](bool telemetry) {
    serve::set_trace_sample(telemetry ? 1 : 0);
    if (telemetry) obs::trace_start(trace_path);
    ModelRegistry registry;
    registry.install(tree_selector(), tree_perf());
    Service service(quick_config(), registry);
    std::vector<std::string> out;
    for (const auto& line : lines) {
      const auto parsed = serve::parse_request_line(line);
      out.push_back(canonical_response_json(service.call(parsed.request)));
    }
    service.shutdown();
    if (telemetry) obs::trace_stop();
    return out;
  };

  const auto off = run_pass(/*telemetry=*/false);
  const auto on = run_pass(/*telemetry=*/true);
  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i)
    EXPECT_EQ(off[i], on[i]) << "response " << i << " diverged";

  // And the telemetry pass really was on: the trace has request spans.
  const std::string trace = slurp(trace_path);
  std::remove(trace_path.c_str());
  EXPECT_NE(trace.find("req.queue"), std::string::npos);
}

}  // namespace
}  // namespace spmvml
