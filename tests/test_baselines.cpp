// Baseline selector tests (§VII comparisons).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/baselines.hpp"
#include "core/study.hpp"
#include "ml/metrics.hpp"

namespace spmvml {
namespace {

const LabeledCorpus& shared_corpus() {
  static const LabeledCorpus corpus = collect_corpus(make_small_plan(40, 404));
  return corpus;
}

TEST(AnalyticalModel, PredictsPositiveTimes) {
  const AnalyticalModel model(tesla_p100(), Precision::kDouble);
  for (const auto& rec : shared_corpus().records)
    for (Format f : kAllFormats)
      EXPECT_GT(model.predict_seconds(rec.features, f), 0.0);
}

TEST(AnalyticalModel, PunishesEllPadding) {
  const AnalyticalModel model(tesla_k40c(), Precision::kDouble);
  FeatureVector regular;
  regular.values[kNRows] = 100000;
  regular.values[kNnzTot] = 1000000;
  regular.values[kNnzMu] = 10;
  regular.values[kNnzMax] = 10;
  FeatureVector skewed = regular;
  skewed.values[kNnzMax] = 5000;
  EXPECT_GT(model.predict_seconds(skewed, Format::kEll),
            100.0 * model.predict_seconds(regular, Format::kEll));
  // merge is insensitive to the max row.
  EXPECT_NEAR(model.predict_seconds(skewed, Format::kMergeCsr),
              model.predict_seconds(regular, Format::kMergeCsr), 1e-9);
}

TEST(AnalyticalModel, SelectionBeatsChance) {
  const AnalyticalModel model(tesla_p100(), Precision::kDouble);
  const auto study = make_classification_study(
      shared_corpus(), 1, Precision::kDouble, kAllFormats,
      FeatureSet::kSet123);
  std::vector<int> pred;
  for (const auto& rec : shared_corpus().records)
    pred.push_back(model.select(rec.features, kAllFormats));
  EXPECT_GT(ml::accuracy(study.data.labels, pred), 1.5 / 6.0);
}

TEST(SamplingSelector, SampleKeepsPrefixRows) {
  Csr<double> m(4, 4, {0, 2, 4, 6, 8}, {0, 1, 1, 2, 0, 3, 2, 3},
                {1, 2, 3, 4, 5, 6, 7, 8});
  const auto s = SamplingSelector::sample_rows(m, 0.5);
  EXPECT_EQ(s.nnz(), 4);
  EXPECT_EQ(s.rows(), 2);
  EXPECT_EQ(s.cols(), 4);
  EXPECT_DOUBLE_EQ(s.values()[3], 4.0);
}

TEST(SamplingSelector, FullFractionReturnsWholeMatrix) {
  Csr<double> m(3, 3, {0, 1, 2, 3}, {0, 1, 2}, {1, 2, 3});
  const auto s = SamplingSelector::sample_rows(m, 1.0);
  EXPECT_EQ(s.rows(), 3);
  EXPECT_EQ(s.nnz(), 3);
}

TEST(SamplingSelector, RejectsBadFraction) {
  Csr<double> m(1, 1, {0, 1}, {0}, {1.0});
  EXPECT_THROW(SamplingSelector::sample_rows(m, 0.0), Error);
  EXPECT_THROW(SamplingSelector::sample_rows(m, 1.5), Error);
}

TEST(SamplingSelector, PicksPlausibleFormats) {
  const MeasurementOracle oracle(tesla_p100(), Precision::kDouble);
  const SamplingSelector selector(oracle, 0.3);
  GenSpec spec;
  spec.family = MatrixFamily::kBanded;
  spec.rows = 50000;
  spec.cols = 50000;
  spec.row_mu = 12;
  spec.seed = 77;
  const auto m = generate(spec);
  const int pick = selector.select(m, spec.seed, kAllFormats);
  ASSERT_GE(pick, 0);
  ASSERT_LT(pick, static_cast<int>(kAllFormats.size()));
  // A regular banded matrix must not pick COO.
  EXPECT_NE(kAllFormats[static_cast<std::size_t>(pick)], Format::kCoo);
}

class FixedProbaModel final : public ml::Classifier {
 public:
  explicit FixedProbaModel(std::vector<double> p) : p_(std::move(p)) {}
  void fit(const ml::Matrix&, const std::vector<int>&) override {}
  int predict(const std::vector<double>&) const override {
    return static_cast<int>(std::max_element(p_.begin(), p_.end()) -
                            p_.begin());
  }
  std::vector<double> predict_proba(const std::vector<double>&) const override {
    return p_;
  }
  void save(std::ostream&) const override {}
  void load(std::istream&) override {}

 private:
  std::vector<double> p_;
};

TEST(ConfidenceSelector, TrustsConfidentModel) {
  const FixedProbaModel model({0.9, 0.05, 0.05});
  const ConfidenceSelector selector(model, 0.7);
  const std::vector<double> times = {5.0, 1.0, 2.0};  // measured says 1
  const auto choice = selector.select({}, times);
  EXPECT_EQ(choice.label, 0);  // confident: no execution
  EXPECT_FALSE(choice.executed);
}

TEST(ConfidenceSelector, ExecutesTopTwoWhenUnsure) {
  const FixedProbaModel model({0.4, 0.35, 0.25});
  const ConfidenceSelector selector(model, 0.7);
  const std::vector<double> times = {5.0, 1.0, 0.1};
  const auto choice = selector.select({}, times);
  EXPECT_TRUE(choice.executed);
  // Candidates 0 and 1 are executed; 1 measures faster. (2 is fastest but
  // not probable enough to be tried — the SMAT trade-off.)
  EXPECT_EQ(choice.label, 1);
}

TEST(ConfidenceSelector, ImprovesAccuracyOnRealStudy) {
  const auto study = make_classification_study(
      shared_corpus(), 1, Precision::kDouble, kAllFormats,
      FeatureSet::kSet12);
  auto model = make_classifier(ModelKind::kXgboost, true);
  model->fit(study.data.x, study.data.labels);
  const ConfidenceSelector hybrid(*model, 0.9);

  std::vector<int> plain, confident;
  for (std::size_t i = 0; i < study.data.size(); ++i) {
    plain.push_back(model->predict(study.data.x[i]));
    confident.push_back(hybrid.select(study.data.x[i], study.times[i]).label);
  }
  EXPECT_GE(ml::accuracy(study.data.labels, confident),
            ml::accuracy(study.data.labels, plain));
}

}  // namespace
}  // namespace spmvml
