// Parallel SpMV kernels must agree with the serial reference for every
// structure family and partition count — including the merge-path
// two-phase carry fix-up on rows spanning many partitions.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "sparse/parallel_spmv.hpp"
#include "sparse/spmv.hpp"
#include "synth/generators.hpp"

namespace spmvml {
namespace {

std::vector<double> random_x(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  return x;
}

double rel_err(double a, double b) {
  const double scale = std::max({std::abs(a), std::abs(b), 1e-30});
  return std::abs(a - b) / scale;
}

class ParallelMatchesSerial : public ::testing::TestWithParam<MatrixFamily> {};

TEST_P(ParallelMatchesSerial, AllKernels) {
  GenSpec spec;
  spec.family = GetParam();
  spec.rows = 1500;
  spec.cols = 1600;
  spec.row_mu = 9.0;
  spec.row_cv = 1.2;
  spec.seed = 17;
  const auto m = generate(spec);
  const auto x = random_x(m.cols(), 99);
  std::vector<double> expect(static_cast<std::size_t>(m.rows()));
  spmv_reference(m, x, expect);

  auto check = [&](std::span<const double> y, const char* what) {
    for (index_t r = 0; r < m.rows(); ++r)
      ASSERT_LT(rel_err(y[static_cast<std::size_t>(r)],
                        expect[static_cast<std::size_t>(r)]),
                1e-10)
          << what << " row " << r;
  };

  std::vector<double> y(static_cast<std::size_t>(m.rows()));
  spmv_parallel(m, x, y);
  check(y, "CSR");

  const auto ell = Ell<double>::from_csr(m);
  spmv_parallel(ell, x, y);
  check(y, "ELL");

  const auto hyb = Hyb<double>::from_csr(m);
  spmv_parallel(hyb, x, y);
  check(y, "HYB");

  const auto merge = MergeCsr<double>::from_csr(m, 64);
  spmv_parallel(merge, x, y);
  check(y, "merge-CSR");
}

INSTANTIATE_TEST_SUITE_P(
    Families, ParallelMatchesSerial,
    ::testing::Values(MatrixFamily::kBanded, MatrixFamily::kStencil,
                      MatrixFamily::kUniformRandom, MatrixFamily::kPowerLaw,
                      MatrixFamily::kBlockRandom, MatrixFamily::kGeomGraph));

class MergeParallelPartitions : public ::testing::TestWithParam<index_t> {};

TEST_P(MergeParallelPartitions, RowSpanningManyPartitions) {
  // One enormous row followed by many small ones: the big row spans many
  // merge partitions, exercising the carry fix-up heavily.
  std::vector<Triplet<double>> t;
  Rng rng(3);
  for (index_t c = 0; c < 3000; c += 2) t.push_back({0, c, rng.uniform()});
  for (index_t r = 1; r < 400; ++r)
    t.push_back({r, rng.uniform_int(0, 2999), rng.uniform()});
  const auto m = Csr<double>::from_triplets(400, 3000, std::move(t));
  const auto x = random_x(m.cols(), 4);
  std::vector<double> expect(400);
  spmv_reference(m, x, expect);

  const auto merge = MergeCsr<double>::from_csr(m, GetParam());
  std::vector<double> y(400);
  spmv_parallel(merge, x, y);
  for (index_t r = 0; r < 400; ++r)
    ASSERT_LT(rel_err(y[static_cast<std::size_t>(r)],
                      expect[static_cast<std::size_t>(r)]),
              1e-10)
        << "parts=" << GetParam() << " row " << r;
}

INSTANTIATE_TEST_SUITE_P(Partitions, MergeParallelPartitions,
                         ::testing::Values(1, 2, 3, 17, 64, 500, 1900));

TEST(ParallelSpmv, SerialAndParallelCsrBitIdentical) {
  // Same summation order per row -> bit-identical, not just close.
  GenSpec spec;
  spec.family = MatrixFamily::kUniformRandom;
  spec.rows = 800;
  spec.cols = 800;
  spec.row_mu = 11.0;
  spec.seed = 5;
  const auto m = generate(spec);
  const auto x = random_x(m.cols(), 6);
  std::vector<double> serial(800), parallel(800);
  m.spmv(x, serial);
  spmv_parallel(m, x, parallel);
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelSpmv, EmptyRowsProduceZero) {
  Csr<double> m(5, 3, {0, 0, 2, 2, 2, 3}, {0, 2, 1}, {1.0, 2.0, 3.0});
  const std::vector<double> x = {1.0, 1.0, 1.0};
  std::vector<double> y(5, -7.0);
  spmv_parallel(MergeCsr<double>::from_csr(m, 4), x, y);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
  EXPECT_DOUBLE_EQ(y[4], 3.0);
}

}  // namespace
}  // namespace spmvml
