// Mathematical property tests that hold for every format and matrix:
// linearity of SpMV, the adjoint identity with the transpose, and
// value-independence of structural features.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "features/features.hpp"
#include "gpusim/oracle.hpp"
#include "gpusim/row_summary.hpp"
#include "sparse/spmv.hpp"
#include "synth/generators.hpp"

namespace spmvml {
namespace {

Csr<double> test_matrix(std::uint64_t seed) {
  GenSpec spec;
  spec.family = MatrixFamily::kUniformRandom;
  spec.rows = 600;
  spec.cols = 640;
  spec.row_mu = 8.0;
  spec.row_cv = 1.0;
  spec.seed = seed;
  return generate(spec);
}

std::vector<double> random_vec(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

TEST(MathProperties, SpmvIsLinearInX) {
  // A(a*x1 + b*x2) == a*A*x1 + b*A*x2 for every format.
  const auto m = test_matrix(1);
  const auto x1 = random_vec(m.cols(), 2);
  const auto x2 = random_vec(m.cols(), 3);
  const double a = 2.5, b = -0.75;
  std::vector<double> combo(x1.size());
  for (std::size_t i = 0; i < x1.size(); ++i)
    combo[i] = a * x1[i] + b * x2[i];

  for (Format f : kAllFormats) {
    const auto any = AnyMatrix<double>::build(f, m);
    std::vector<double> y1(static_cast<std::size_t>(m.rows()));
    std::vector<double> y2(y1.size()), y_combo(y1.size());
    any.spmv(x1, y1);
    any.spmv(x2, y2);
    any.spmv(combo, y_combo);
    for (std::size_t i = 0; i < y1.size(); ++i)
      ASSERT_NEAR(y_combo[i], a * y1[i] + b * y2[i],
                  1e-9 * (1.0 + std::abs(y_combo[i])))
          << format_name(f);
  }
}

TEST(MathProperties, AdjointIdentityWithTranspose) {
  // y^T (A x) == x^T (A^T y).
  const auto m = test_matrix(4);
  const auto t = m.transpose();
  const auto x = random_vec(m.cols(), 5);
  const auto y = random_vec(m.rows(), 6);

  std::vector<double> ax(static_cast<std::size_t>(m.rows()));
  std::vector<double> aty(static_cast<std::size_t>(m.cols()));
  m.spmv(x, ax);
  t.spmv(y, aty);

  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < ax.size(); ++i) lhs += y[i] * ax[i];
  for (std::size_t i = 0; i < aty.size(); ++i) rhs += x[i] * aty[i];
  EXPECT_NEAR(lhs, rhs, 1e-9 * (1.0 + std::abs(lhs)));
}

TEST(MathProperties, ZeroVectorMapsToZero) {
  const auto m = test_matrix(7);
  const std::vector<double> zero(static_cast<std::size_t>(m.cols()), 0.0);
  for (Format f : kAllFormats) {
    const auto any = AnyMatrix<double>::build(f, m);
    std::vector<double> y(static_cast<std::size_t>(m.rows()), 42.0);
    any.spmv(zero, y);
    for (double v : y) ASSERT_DOUBLE_EQ(v, 0.0) << format_name(f);
  }
}

TEST(MathProperties, FeaturesIgnoreValues) {
  // The 17 features (and the oracle's structural digest) depend on the
  // sparsity pattern only: scaling every value must not move them.
  auto m = test_matrix(8);
  const auto before = extract_features(m);
  const auto summary_before = summarize(m);
  for (auto& v : m.values_mut()) v *= -3.75;
  const auto after = extract_features(m);
  const auto summary_after = summarize(m);
  for (int i = 0; i < kNumFeatures; ++i)
    EXPECT_DOUBLE_EQ(before[i], after[i]) << feature_name(i);
  EXPECT_DOUBLE_EQ(summary_before.avg_stride, summary_after.avg_stride);
  EXPECT_DOUBLE_EQ(summary_before.band_fraction, summary_after.band_fraction);
}

TEST(MathProperties, OracleTimeIsValueIndependent) {
  auto m = test_matrix(9);
  const MeasurementOracle oracle(tesla_p100(), Precision::kDouble);
  const double t1 =
      oracle.measure(summarize(m), Format::kCsr5, 11).seconds;
  for (auto& v : m.values_mut()) v *= 10.0;
  const double t2 =
      oracle.measure(summarize(m), Format::kCsr5, 11).seconds;
  EXPECT_DOUBLE_EQ(t1, t2);
}

TEST(MathProperties, GflopsTimesTimeIsWork) {
  const auto m = test_matrix(10);
  const auto s = summarize(m);
  const MeasurementOracle oracle(tesla_k40c(), Precision::kSingle);
  for (Format f : kAllFormats) {
    const auto meas = oracle.measure(s, f, 3);
    EXPECT_NEAR(meas.gflops * meas.seconds * 1e9,
                2.0 * static_cast<double>(m.nnz()),
                1e-3 * static_cast<double>(m.nnz()))
        << format_name(f);
  }
}

}  // namespace
}  // namespace spmvml
