// Observability tests: JsonWriter escaping and round-trip, logger level
// filtering and serialized concurrent output, sharded metrics exactness,
// Chrome-trace span recording/nesting, the --report writer, and the
// byte-identical-output guarantee with observability enabled.
//
// The ObsConcurrency suite runs under TSan via tools/check.sh --tsan.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/json_writer.hpp"
#include "common/obs/log.hpp"
#include "common/obs/metrics.hpp"
#include "common/obs/prom.hpp"
#include "common/obs/report.hpp"
#include "common/obs/trace.hpp"
#include "core/label_collector.hpp"

namespace spmvml {
namespace {

// ---------------------------------------------------------------------------
// Mini recursive-descent JSON parser — just enough to verify that the
// files the trace/report writers emit are well-formed JSON and to read
// scalar fields back out. Throws std::runtime_error on malformed input.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> fields;

  const JsonValue& at(const std::string& k) const {
    const auto it = fields.find(k);
    if (it == fields.end()) throw std::runtime_error("missing key " + k);
    return it->second;
  }
  bool has(const std::string& k) const { return fields.count(k) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    const JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) throw std::runtime_error("trailing content");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c)
      throw std::runtime_error(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    const char c = peek();
    JsonValue v;
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      v.kind = JsonValue::Kind::kString;
      v.str = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (consume_literal("null")) return v;
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      if (peek() != '"') throw std::runtime_error("expected object key");
      std::string key = parse_string();
      expect(':');
      v.fields[std::move(key)] = parse_value();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') throw std::runtime_error("expected ',' or '}'");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') throw std::runtime_error("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) throw std::runtime_error("unclosed string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        throw std::runtime_error("raw control byte in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) throw std::runtime_error("bad escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) throw std::runtime_error("bad \\u");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A' + 10);
            else
              throw std::runtime_error("bad hex digit in \\u");
          }
          // The writers only \u-escape control bytes (< 0x20).
          out += static_cast<char>(code);
          break;
        }
        default: throw std::runtime_error("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) throw std::runtime_error("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// RAII guard: captures log output and restores the prior off state.
class ScopedLogCapture {
 public:
  explicit ScopedLogCapture(obs::LogLevel level) {
    obs::set_log_sink(&text);
    obs::set_log_level(level);
  }
  ~ScopedLogCapture() {
    obs::set_log_level(obs::LogLevel::kOff);
    obs::set_log_sink(nullptr);
  }
  std::string text;
};

// ---------------------------------------------------------------------------
// JsonWriter

TEST(JsonWriterTest, EscapesStringsCompletely) {
  EXPECT_EQ(JsonWriter::escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonWriter::escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonWriter::escape(std::string_view("\x01", 1)), "\\u0001");
  // UTF-8 multibyte sequences pass through untouched.
  EXPECT_EQ(JsonWriter::escape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(JsonWriterTest, NumbersRoundTripExactly) {
  for (const double v : {0.0, -1.5, 1e-9, 3.141592653589793, 1e300,
                         0.1 + 0.2, 123456789.123456789}) {
    const std::string text = JsonWriter::number(v);
    EXPECT_EQ(std::stod(text), v) << text;
    // Locale-independent: never a comma decimal separator.
    EXPECT_EQ(text.find(','), std::string::npos);
  }
  EXPECT_EQ(JsonWriter::number(std::nan("")), "null");
  EXPECT_EQ(JsonWriter::number(INFINITY), "null");
}

TEST(JsonWriterTest, WritesNestedDocumentTheParserAccepts) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  w.kv("name", "quote\"and\\slash");
  w.kv("count", std::uint64_t{42});
  w.kv("neg", std::int64_t{-7});
  w.kv("pi", 3.5);
  w.kv("flag", true);
  w.key("list");
  w.begin_array();
  w.value(1);
  w.value("two");
  w.begin_object();
  w.kv("deep", 3.0);
  w.end_object();
  w.end_array();
  w.end_object();

  const JsonValue doc = parse_json(out.str());
  EXPECT_EQ(doc.at("name").str, "quote\"and\\slash");
  EXPECT_EQ(doc.at("count").number, 42.0);
  EXPECT_EQ(doc.at("neg").number, -7.0);
  EXPECT_EQ(doc.at("pi").number, 3.5);
  EXPECT_TRUE(doc.at("flag").boolean);
  ASSERT_EQ(doc.at("list").items.size(), 3u);
  EXPECT_EQ(doc.at("list").items[1].str, "two");
  EXPECT_EQ(doc.at("list").items[2].at("deep").number, 3.0);
}

TEST(JsonWriterTest, CompactModeIsSingleLine) {
  std::ostringstream out;
  JsonWriter w(out, /*indent=*/0);
  w.begin_object();
  w.kv("a", 1);
  w.kv("b", 2);
  w.end_object();
  EXPECT_EQ(out.str().find('\n'), std::string::npos);
  EXPECT_NO_THROW(parse_json(out.str()));
}

TEST(JsonWriterTest, MisuseThrows) {
  std::ostringstream out;
  JsonWriter w(out);
  EXPECT_THROW(w.end_object(), Error);  // unbalanced
  JsonWriter w2(out);
  w2.begin_object();
  EXPECT_THROW(w2.value(1.0), Error);  // value without a key
}

// ---------------------------------------------------------------------------
// Logger

TEST(ObsLog, LevelFiltering) {
  ScopedLogCapture capture(obs::LogLevel::kWarn);
  obs::log_debug("dropped_debug").kv("k", 1);
  obs::log_info("dropped_info").kv("k", 2);
  obs::log_warn("kept_warn").kv("k", 3);
  obs::log_error("kept_error").kv("k", 4);
  EXPECT_EQ(capture.text.find("dropped_debug"), std::string::npos);
  EXPECT_EQ(capture.text.find("dropped_info"), std::string::npos);
  EXPECT_NE(capture.text.find("event=kept_warn k=3"), std::string::npos);
  EXPECT_NE(capture.text.find("event=kept_error k=4"), std::string::npos);
}

TEST(ObsLog, OffEmitsNothing) {
  ScopedLogCapture capture(obs::LogLevel::kOff);
  obs::log_error("suppressed").kv("k", 1);
  EXPECT_TRUE(capture.text.empty());
}

TEST(ObsLog, StructuredFieldsAndQuoting) {
  ScopedLogCapture capture(obs::LogLevel::kInfo);
  obs::log_info("fields")
      .kv("str", "plain")
      .kv("spaced", "two words")
      .kv("num", 1.5)
      .kv("neg", std::int64_t{-3})
      .kv("flag", false);
  EXPECT_NE(capture.text.find("level=info"), std::string::npos);
  EXPECT_NE(capture.text.find("event=fields"), std::string::npos);
  EXPECT_NE(capture.text.find("str=plain"), std::string::npos);
  EXPECT_NE(capture.text.find("spaced=\"two words\""), std::string::npos);
  EXPECT_NE(capture.text.find("num=1.5"), std::string::npos);
  EXPECT_NE(capture.text.find("neg=-3"), std::string::npos);
  EXPECT_NE(capture.text.find("flag=false"), std::string::npos);
}

TEST(ObsConcurrency, LogLinesNeverInterleave) {
  ScopedLogCapture capture(obs::LogLevel::kInfo);
  constexpr int kThreads = 8, kLines = 200;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([t] {
      for (int i = 0; i < kLines; ++i)
        obs::log_info("spam").kv("worker", t).kv("i", i).kv("pad",
            "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx");
    });
  for (auto& w : workers) w.join();

  // Serialized writes => every line is complete and well-formed.
  std::istringstream lines(capture.text);
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    ++count;
    EXPECT_NE(line.find("event=spam"), std::string::npos) << line;
    EXPECT_NE(line.find("pad=xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"),
              std::string::npos)
        << line;
  }
  EXPECT_EQ(count, kThreads * kLines);
}

// ---------------------------------------------------------------------------
// Metrics

TEST(ObsMetrics, CountersGaugesHistogramsSnapshot) {
  obs::MetricsRegistry reg;
  auto c = reg.counter("test.counter");
  c.add(5);
  c.inc();
  auto g = reg.gauge("test.gauge");
  g.set(2.0);
  g.add(1.5);
  const std::vector<double> bounds = {1.0, 10.0, 100.0};
  auto h = reg.histogram("test.hist", bounds);
  for (const double v : {0.5, 1.0, 5.0, 50.0, 1e6}) h.observe(v);

  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter("test.counter"), 6u);
  EXPECT_EQ(snap.counter("missing"), 0u);
  EXPECT_DOUBLE_EQ(snap.gauge("test.gauge"), 3.5);
  const auto* hist = snap.histogram("test.hist");
  ASSERT_NE(hist, nullptr);
  ASSERT_EQ(hist->buckets.size(), 4u);  // 3 bounds + overflow
  // Inclusive upper bounds: 0.5 and 1.0 land in the first bucket.
  EXPECT_EQ(hist->buckets[0], 2u);
  EXPECT_EQ(hist->buckets[1], 1u);
  EXPECT_EQ(hist->buckets[2], 1u);
  EXPECT_EQ(hist->buckets[3], 1u);
  EXPECT_EQ(hist->stats.count(), 5);
  EXPECT_DOUBLE_EQ(hist->stats.min(), 0.5);
  EXPECT_DOUBLE_EQ(hist->stats.max(), 1e6);
}

TEST(ObsMetrics, ResetZeroesInPlace) {
  obs::MetricsRegistry reg;
  auto c = reg.counter("will.reset");
  c.add(3);
  reg.reset();
  EXPECT_EQ(reg.snapshot().counter("will.reset"), 0u);
  c.inc();  // handle stays valid after reset
  EXPECT_EQ(reg.snapshot().counter("will.reset"), 1u);
}

TEST(ObsConcurrency, ShardedCountersMergeExactly) {
  obs::MetricsRegistry reg;
  auto c = reg.counter("concurrent.counter");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(reg.snapshot().counter("concurrent.counter"),
            kThreads * kPerThread);
}

TEST(ObsConcurrency, ShardedHistogramMergeMatchesSerialStats) {
  obs::MetricsRegistry reg;
  auto h = reg.histogram("concurrent.hist", obs::default_latency_bounds_s());
  constexpr int kThreads = 6, kPerThread = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i)
        h.observe(1e-6 * static_cast<double>(t * kPerThread + i + 1));
    });
  for (auto& w : workers) w.join();

  // The same observations accumulated serially: count/sum/min/max of the
  // merged shards must match exactly (StreamingStats::merge is exact for
  // those), and the bucket total must equal the observation count.
  StreamingStats serial;
  for (int v = 1; v <= kThreads * kPerThread; ++v)
    serial.add(1e-6 * static_cast<double>(v));
  const auto snap = reg.snapshot();
  const auto* hist = snap.histogram("concurrent.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->stats.count(), serial.count());
  EXPECT_DOUBLE_EQ(hist->stats.min(), serial.min());
  EXPECT_DOUBLE_EQ(hist->stats.max(), serial.max());
  EXPECT_NEAR(hist->stats.sum(), serial.sum(), serial.sum() * 1e-12);
  EXPECT_NEAR(hist->stats.mean(), serial.mean(), 1e-12);
  std::uint64_t total = 0;
  for (const std::uint64_t b : hist->buckets) total += b;
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ObsConcurrency, GaugeAddIsAtomic) {
  obs::MetricsRegistry reg;
  auto g = reg.gauge("concurrent.gauge");
  constexpr int kThreads = 8, kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) g.add(1.0);
      for (int i = 0; i < kPerThread; ++i) g.add(-1.0);
    });
  for (auto& w : workers) w.join();
  EXPECT_DOUBLE_EQ(reg.snapshot().gauge("concurrent.gauge"), 0.0);
}

// ---------------------------------------------------------------------------
// Trace spans

TEST(ObsTrace, RecordsNestedSpansWithArgs) {
  obs::trace_start("");  // memory-only
  {
    obs::TraceSpan outer("outer");
    outer.arg("n", 3).arg("label", "abc");
    {
      obs::TraceSpan inner("inner");
      inner.arg("x", 1.5);
    }
    obs::trace_instant("tick");
  }
  const auto events = obs::trace_snapshot();
  obs::trace_stop();
  ASSERT_EQ(events.size(), 3u);
  // Spans append at destruction: inner, instant, outer.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "tick");
  EXPECT_EQ(events[1].phase, 'i');
  EXPECT_EQ(events[2].name, "outer");
  EXPECT_EQ(events[2].phase, 'X');
  ASSERT_EQ(events[2].args.size(), 2u);
  EXPECT_EQ(events[2].args[0].key, "n");
  EXPECT_EQ(events[2].args[0].json, "3");
  EXPECT_EQ(events[2].args[1].json, "\"abc\"");

  // Proper nesting: inner lies within [outer.ts, outer.ts + outer.dur].
  const auto& inner = events[0];
  const auto& outer = events[2];
  EXPECT_EQ(inner.tid, outer.tid);
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us + 1e-3);
}

TEST(ObsTrace, SpansNestProperlyPerThread) {
  obs::trace_start("");
  constexpr int kThreads = 4, kDepth = 3, kReps = 20;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([] {
      for (int r = 0; r < kReps; ++r) {
        obs::TraceSpan a("a");
        obs::TraceSpan b("b");
        obs::TraceSpan c("c");
        (void)kDepth;
      }
    });
  for (auto& w : workers) w.join();
  const auto events = obs::trace_snapshot();
  obs::trace_stop();
  ASSERT_EQ(events.size(),
            static_cast<std::size_t>(kThreads) * kDepth * kReps);

  // Scoped spans on one thread can only nest or be disjoint — partial
  // overlap would mean the recorded intervals are wrong.
  for (std::size_t i = 0; i < events.size(); ++i) {
    for (std::size_t j = i + 1; j < events.size(); ++j) {
      const auto& x = events[i];
      const auto& y = events[j];
      if (x.tid != y.tid || x.phase != 'X' || y.phase != 'X') continue;
      const double x0 = x.ts_us, x1 = x.ts_us + x.dur_us;
      const double y0 = y.ts_us, y1 = y.ts_us + y.dur_us;
      const bool disjoint = x1 <= y0 + 1e-3 || y1 <= x0 + 1e-3;
      const bool x_in_y = x0 >= y0 - 1e-3 && x1 <= y1 + 1e-3;
      const bool y_in_x = y0 >= x0 - 1e-3 && y1 <= x1 + 1e-3;
      EXPECT_TRUE(disjoint || x_in_y || y_in_x)
          << "partial overlap on tid " << x.tid;
    }
  }
}

TEST(ObsTrace, WritesValidChromeTraceJson) {
  const std::string path = testing::TempDir() + "/spmvml_trace_test.json";
  std::remove(path.c_str());
  obs::trace_start(path);
  {
    obs::TraceSpan span("unit.span");
    span.arg("k", 7).arg("name", "needs \"escaping\"\n");
  }
  obs::trace_instant("unit.instant");
  obs::trace_stop();

  const JsonValue doc = parse_json(slurp(path));
  EXPECT_EQ(doc.at("displayTimeUnit").str, "ms");
  const auto& events = doc.at("traceEvents").items;
  ASSERT_EQ(events.size(), 2u);
  for (const auto& ev : events) {
    EXPECT_EQ(ev.at("cat").str, "spmvml");
    EXPECT_EQ(ev.at("pid").number, 1.0);
    EXPECT_GE(ev.at("ts").number, 0.0);
    EXPECT_TRUE(ev.has("tid"));
  }
  const auto& complete = events[0];
  EXPECT_EQ(complete.at("name").str, "unit.span");
  EXPECT_EQ(complete.at("ph").str, "X");
  EXPECT_GE(complete.at("dur").number, 0.0);
  EXPECT_EQ(complete.at("args").at("k").number, 7.0);
  EXPECT_EQ(complete.at("args").at("name").str, "needs \"escaping\"\n");
  const auto& instant = events[1];
  EXPECT_EQ(instant.at("ph").str, "i");
  EXPECT_EQ(instant.at("s").str, "t");
  std::remove(path.c_str());
}

TEST(ObsTrace, DisabledSpansRecordNothing) {
  // No trace_start: spans must be free of side effects.
  { obs::TraceSpan span("ignored"); }
  obs::trace_start("");
  const auto events = obs::trace_snapshot();
  obs::trace_stop();
  EXPECT_TRUE(events.empty());
}

// ---------------------------------------------------------------------------
// Report

TEST(ObsReport, RoundTripsThroughWriterAndParser) {
  const std::string path = testing::TempDir() + "/spmvml_report_test.json";
  std::remove(path.c_str());
  obs::MetricsRegistry reg;
  reg.counter("r.counter").add(11);
  reg.gauge("r.gauge").set(-2.5);
  auto h = reg.histogram("r.hist", obs::default_latency_bounds_s());
  h.observe(1e-4);
  h.observe(2e-3);

  obs::ReportMeta meta;
  meta.tool = "spmvml test";
  meta.command = "spmvml test --report \"quoted path\"";
  meta.seed = 2018;
  meta.threads = 4;
  meta.wall_s = 1.25;
  obs::write_report(path, meta, reg);

  const JsonValue doc = parse_json(slurp(path));
  EXPECT_EQ(doc.at("run").at("tool").str, "spmvml test");
  EXPECT_EQ(doc.at("run").at("command").str,
            "spmvml test --report \"quoted path\"");
  EXPECT_EQ(doc.at("run").at("seed").number, 2018.0);
  EXPECT_EQ(doc.at("run").at("threads").number, 4.0);
  EXPECT_EQ(doc.at("run").at("wall_s").number, 1.25);
  const auto& metrics = doc.at("metrics");
  EXPECT_EQ(metrics.at("counters").at("r.counter").number, 11.0);
  EXPECT_EQ(metrics.at("gauges").at("r.gauge").number, -2.5);
  const auto& hist = metrics.at("histograms").at("r.hist");
  EXPECT_EQ(hist.at("count").number, 2.0);
  EXPECT_EQ(hist.at("bounds").items.size() + 1, hist.at("buckets").items.size());
  double bucket_total = 0.0;
  for (const auto& b : hist.at("buckets").items) bucket_total += b.number;
  EXPECT_EQ(bucket_total, 2.0);
  EXPECT_DOUBLE_EQ(hist.at("min").number, 1e-4);
  EXPECT_DOUBLE_EQ(hist.at("max").number, 2e-3);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Histogram quantiles

TEST(ObsMetrics, QuantileOfEmptyHistogramIsZero) {
  obs::MetricsRegistry reg;
  (void)reg.histogram("q.empty", std::vector<double>{1.0, 10.0});
  const auto snap = reg.snapshot();
  const auto* hist = snap.histogram("q.empty");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->quantile(0.0), 0.0);
  EXPECT_EQ(hist->quantile(0.5), 0.0);
  EXPECT_EQ(hist->quantile(1.0), 0.0);
}

TEST(ObsMetrics, QuantileOfSingleObservationIsExact) {
  obs::MetricsRegistry reg;
  auto h = reg.histogram("q.single", std::vector<double>{1.0, 10.0, 100.0});
  h.observe(5.0);
  const auto snap = reg.snapshot();
  const auto* hist = snap.histogram("q.single");
  ASSERT_NE(hist, nullptr);
  // Clamping to the observed [min, max] makes every quantile exact.
  for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(hist->quantile(q), 5.0) << "q=" << q;
}

TEST(ObsMetrics, QuantileAllOverflowReturnsExactMax) {
  obs::MetricsRegistry reg;
  auto h = reg.histogram("q.overflow", std::vector<double>{1.0});
  h.observe(10.0);
  h.observe(20.0);
  h.observe(30.0);
  const auto snap = reg.snapshot();
  const auto* hist = snap.histogram("q.overflow");
  ASSERT_NE(hist, nullptr);
  ASSERT_EQ(hist->buckets.size(), 2u);
  EXPECT_EQ(hist->buckets[0], 0u);
  EXPECT_EQ(hist->buckets[1], 3u);
  // The overflow bucket has no finite upper bound: the exact max is the
  // only honest answer, for any quantile landing there.
  EXPECT_DOUBLE_EQ(hist->quantile(0.1), 30.0);
  EXPECT_DOUBLE_EQ(hist->quantile(1.0), 30.0);
}

TEST(ObsMetrics, QuantileInterpolatesAndStaysMonotonic) {
  obs::MetricsRegistry reg;
  auto h = reg.histogram("q.interp", std::vector<double>{10.0, 20.0, 30.0});
  for (int v = 1; v <= 30; ++v) h.observe(static_cast<double>(v));
  const auto snap = reg.snapshot();
  const auto* hist = snap.histogram("q.interp");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->quantile(0.0), 1.0);   // clamped to min
  EXPECT_DOUBLE_EQ(hist->quantile(1.0), 30.0);  // clamped to max
  double prev = 0.0;
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double v = hist->quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 30.0);
    prev = v;
  }
  // Median of 1..30 lands in the (10, 20] bucket.
  EXPECT_GT(hist->quantile(0.5), 10.0);
  EXPECT_LE(hist->quantile(0.5), 20.0);
}

TEST(ObsConcurrency, ShardedQuantilesMatchSerialMergeExactly) {
  obs::MetricsRegistry reg;
  const std::vector<double> bounds = {1e-3, 2e-3, 4e-3, 8e-3};
  auto h = reg.histogram("q.sharded", bounds);
  constexpr int kThreads = 6, kPerThread = 4000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i)
        h.observe(1e-6 *
                  static_cast<double>((t * kPerThread + i) % 10000 + 1));
    });
  for (auto& w : workers) w.join();

  // A serial histogram fed the same multiset must agree bucket-for-bucket
  // (shard merge is exact integer addition), hence quantile-for-quantile.
  obs::MetricsRegistry serial_reg;
  auto serial_h = serial_reg.histogram("q.serial", bounds);
  for (int t = 0; t < kThreads; ++t)
    for (int i = 0; i < kPerThread; ++i)
      serial_h.observe(1e-6 *
                       static_cast<double>((t * kPerThread + i) % 10000 + 1));
  const auto sharded_snap = reg.snapshot();
  const auto serial_snap = serial_reg.snapshot();
  const auto* sharded = sharded_snap.histogram("q.sharded");
  const auto* serial = serial_snap.histogram("q.serial");
  ASSERT_NE(sharded, nullptr);
  ASSERT_NE(serial, nullptr);
  ASSERT_EQ(sharded->buckets, serial->buckets);
  EXPECT_EQ(sharded->stats.count(), serial->stats.count());
  EXPECT_DOUBLE_EQ(sharded->stats.min(), serial->stats.min());
  EXPECT_DOUBLE_EQ(sharded->stats.max(), serial->stats.max());
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(sharded->quantile(q), serial->quantile(q)) << "q=" << q;
}

TEST(ObsMetrics, SnapshotLookupsFindEveryNameInSortedOrder) {
  // The lookups binary-search the name-sorted snapshot vectors; exercise
  // names that stress lexicographic ordering (prefixes, separators).
  obs::MetricsRegistry reg;
  const std::vector<std::string> names = {"a",     "a.b", "a.b.c", "ab",
                                          "m.mid", "z",   "z.z"};
  for (std::size_t i = 0; i < names.size(); ++i) {
    reg.counter(names[i]).add(i + 1);
    reg.gauge(names[i] + ".g").set(static_cast<double>(i) + 0.5);
    reg.histogram(names[i] + ".h", std::vector<double>{1.0})
        .observe(static_cast<double>(i + 1));
  }
  const auto snap = reg.snapshot();
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(snap.counter(names[i]), i + 1) << names[i];
    EXPECT_DOUBLE_EQ(snap.gauge(names[i] + ".g"),
                     static_cast<double>(i) + 0.5);
    const auto* h = snap.histogram(names[i] + ".h");
    ASSERT_NE(h, nullptr) << names[i];
    EXPECT_EQ(h->stats.count(), 1);
  }
  EXPECT_EQ(snap.counter(""), 0u);
  EXPECT_EQ(snap.counter("a.b.c.d"), 0u);
  EXPECT_EQ(snap.counter("zz"), 0u);
  EXPECT_DOUBLE_EQ(snap.gauge("nope"), 0.0);
  EXPECT_EQ(snap.histogram("nope"), nullptr);
}

// ---------------------------------------------------------------------------
// Id-tagged trace events (the request-scoped telemetry primitives)

TEST(ObsTrace, InstantAndCompleteCarryRequestId) {
  obs::trace_start("");
  obs::trace_instant("req.admit", "r-\"1\"");
  // Let real time pass so the retroactive 100us span starts after
  // trace_start and is recorded unclamped.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  obs::trace_complete("req.queue", 100.0, "r-\"1\"");
  const auto events = obs::trace_snapshot();
  obs::trace_stop();
  ASSERT_EQ(events.size(), 2u);

  EXPECT_EQ(events[0].name, "req.admit");
  EXPECT_EQ(events[0].phase, 'i');
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].key, "id");
  EXPECT_EQ(events[0].args[0].json, "\"r-\\\"1\\\"\"");  // escaped JSON

  // trace_complete records retroactively: the span ends "now" and starts
  // dur_us earlier, so it still lands in the right place on the timeline.
  EXPECT_EQ(events[1].name, "req.queue");
  EXPECT_EQ(events[1].phase, 'X');
  EXPECT_GE(events[1].ts_us, 0.0);
  EXPECT_NEAR(events[1].dur_us, 100.0, 1e-6);
  EXPECT_GE(events[1].ts_us + events[1].dur_us, events[0].ts_us);
  ASSERT_EQ(events[1].args.size(), 1u);
  EXPECT_EQ(events[1].args[0].key, "id");
}

TEST(ObsTrace, CompleteClampsSpansPredatingTraceStart) {
  // A retroactive duration longer than the trace has been running cannot
  // start before t=0: the span is clamped to [0, now] instead of going
  // negative (which Chrome trace viewers reject).
  obs::trace_start("");
  obs::trace_complete("req.early", 1e9, "r-0");
  const auto events = obs::trace_snapshot();
  obs::trace_stop();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].ts_us, 0.0);
  EXPECT_LT(events[0].dur_us, 1e9);
  EXPECT_GE(events[0].dur_us, 0.0);
}

TEST(ObsTrace, IdTaggedEventsAreNoOpsWhenDisabled) {
  obs::trace_instant("req.admit", "r-1");
  obs::trace_complete("req.queue", 10.0, "r-1");
  obs::trace_start("");
  const auto events = obs::trace_snapshot();
  obs::trace_stop();
  EXPECT_TRUE(events.empty());
}

// ---------------------------------------------------------------------------
// Prometheus exporter + report reader

TEST(ObsProm, SanitizesMetricNames) {
  EXPECT_EQ(obs::prometheus_name("serve.latency_s"),
            "spmvml_serve_latency_s");
  EXPECT_EQ(obs::prometheus_name("a-b c:d"), "spmvml_a_b_c:d");
  EXPECT_EQ(obs::prometheus_name(""), "spmvml_");
}

TEST(ObsProm, WritesCountersGaugesAndCumulativeHistograms) {
  obs::MetricsRegistry reg;
  reg.counter("p.requests").add(7);
  reg.gauge("p.depth").set(-1.5);
  auto h = reg.histogram("p.lat", std::vector<double>{1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(100.0);
  std::ostringstream out;
  obs::write_prometheus_text(out, reg.snapshot());
  const std::string text = out.str();

  EXPECT_NE(text.find("# TYPE spmvml_p_requests counter\n"
                      "spmvml_p_requests 7\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE spmvml_p_depth gauge\n"
                      "spmvml_p_depth -1.5\n"),
            std::string::npos);
  // Buckets are cumulative and end with +Inf == _count.
  EXPECT_NE(text.find("# TYPE spmvml_p_lat histogram"), std::string::npos);
  EXPECT_NE(text.find("spmvml_p_lat_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("spmvml_p_lat_bucket{le=\"10\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("spmvml_p_lat_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("spmvml_p_lat_sum 105.5\n"), std::string::npos);
  EXPECT_NE(text.find("spmvml_p_lat_count 3\n"), std::string::npos);
}

TEST(ObsProm, ReportRoundTripPreservesTheExportedText) {
  // Live registry -> report JSON -> read_report_metrics -> Prometheus
  // text must equal the text exported straight from the live snapshot:
  // the file is a faithful transport, not a lossy approximation.
  obs::MetricsRegistry reg;
  reg.counter("rt.count").add(42);
  reg.gauge("rt.gauge").set(2.75);
  auto h = reg.histogram("rt.hist", obs::default_latency_bounds_s());
  h.observe(1e-4);
  h.observe(2e-3);
  h.observe(0.5);
  const auto live = reg.snapshot();

  std::ostringstream report;
  obs::ReportMeta meta;
  meta.tool = "spmvml test";
  obs::write_report_json(report, meta, live);
  std::istringstream in(report.str());
  const auto reread = obs::read_report_metrics(in);

  std::ostringstream from_live, from_file;
  obs::write_prometheus_text(from_live, live);
  obs::write_prometheus_text(from_file, reread);
  EXPECT_EQ(from_live.str(), from_file.str());
  EXPECT_FALSE(from_live.str().empty());

  // The reread snapshot also answers lookups/quantiles like the live one.
  const auto* hist = reread.histogram("rt.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->stats.count(), 3);
  EXPECT_DOUBLE_EQ(hist->stats.min(), 1e-4);
  EXPECT_DOUBLE_EQ(hist->stats.max(), 0.5);
  const auto* live_hist = live.histogram("rt.hist");
  ASSERT_NE(live_hist, nullptr);
  for (const double q : {0.0, 0.5, 1.0})
    EXPECT_DOUBLE_EQ(hist->quantile(q), live_hist->quantile(q));
}

TEST(ObsProm, ReadReportMetricsAcceptsBareMetricsObjectAndRejectsGarbage) {
  std::istringstream bare(
      R"({"counters":{"c":3},"gauges":{},"histograms":{}})");
  const auto snap = obs::read_report_metrics(bare);
  EXPECT_EQ(snap.counter("c"), 3u);
  std::istringstream garbage("not json at all");
  EXPECT_THROW(obs::read_report_metrics(garbage), Error);
  std::istringstream truncated(R"({"counters":{"c":)");
  EXPECT_THROW(obs::read_report_metrics(truncated), Error);
}

// ---------------------------------------------------------------------------
// Periodic stats writer

TEST(ObsConcurrency, PeriodicReporterWritesAtomicSnapshots) {
  const std::string path = testing::TempDir() + "/spmvml_stats_test.json";
  std::remove(path.c_str());
  obs::MetricsRegistry reg;
  auto c = reg.counter("periodic.ticks");
  obs::ReportMeta meta;
  meta.tool = "spmvml test";
  {
    obs::PeriodicReporter reporter(path, 0.02, meta, reg);
    for (int i = 0; i < 50; ++i) {
      c.inc();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    reporter.stop();
    // stop() writes a final snapshot, so the file reflects the full run.
    EXPECT_GE(reporter.writes(), 1u);
    reporter.stop();  // idempotent
  }
  const JsonValue doc = parse_json(slurp(path));
  EXPECT_EQ(doc.at("run").at("tool").str, "spmvml test");
  EXPECT_EQ(doc.at("metrics").at("counters").at("periodic.ticks").number,
            50.0);
  EXPECT_GT(doc.at("run").at("wall_s").number, 0.0);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Pipeline integration: metrics reflect collection, and observability
// never perturbs data outputs.

TEST(ObsPipeline, CollectionPopulatesGlobalRegistry) {
  auto& reg = obs::MetricsRegistry::global();
  reg.reset();
  CollectOptions opts;
  opts.threads = 2;
  const auto plan = make_small_plan(6, 33);
  const auto corpus = collect_corpus(plan, opts);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter("collect.matrices.kept"), corpus.size());
  EXPECT_EQ(snap.counter("collect.cells.measured"),
            corpus.stats.attempted * kNumArchs * kNumPrecisions *
                kAllFormats.size());
  EXPECT_GT(snap.counter("features.extracted"), 0u);
  EXPECT_GT(snap.counter("oracle.measure.ok"), 0u);
}

TEST(ObsPipeline, CorpusCsvIsByteIdenticalWithObsEnabled) {
  const auto plan = make_small_plan(8, 44);
  CollectOptions opts;
  opts.threads = 4;
  const std::string path = testing::TempDir() + "/spmvml_obs_csv.tmp.csv";

  // Reference run: logging/tracing off (the default for library users).
  obs::set_log_level(obs::LogLevel::kOff);
  const auto quiet = collect_corpus(plan, opts);
  save_corpus_csv(path, quiet, plan.size());
  const std::string quiet_csv = slurp(path);

  // Observed run: debug logging to a capture sink plus an in-memory
  // trace. The CSV must not move by a byte.
  {
    ScopedLogCapture capture(obs::LogLevel::kDebug);
    obs::trace_start("");
    const auto observed = collect_corpus(plan, opts);
    obs::trace_stop();
    save_corpus_csv(path, observed, plan.size());
    EXPECT_FALSE(capture.text.empty());
  }
  const std::string observed_csv = slurp(path);
  EXPECT_EQ(quiet_csv, observed_csv);
  EXPECT_FALSE(quiet_csv.empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace spmvml
