// Label collection tests: streaming collection, CSV round trip, cache
// reuse and invalidation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/error.hpp"
#include "core/label_collector.hpp"

namespace spmvml {
namespace {

CorpusPlan tiny_plan() { return make_small_plan(6, 77); }

TEST(LabelCollector, CollectsOneRecordPerMatrix) {
  const auto corpus = collect_corpus(tiny_plan());
  EXPECT_EQ(corpus.size(), 6u);
  for (const auto& rec : corpus.records) {
    EXPECT_GT(rec.nnz, 0.0);
    for (int a = 0; a < kNumArchs; ++a)
      for (int p = 0; p < kNumPrecisions; ++p)
        for (Format f : kAllFormats)
          EXPECT_GT(rec.time(a, static_cast<Precision>(p), f), 0.0);
  }
}

TEST(LabelCollector, FeaturesMatchDirectExtraction) {
  const auto plan = tiny_plan();
  const auto corpus = collect_corpus(plan);
  const auto m = generate(plan.specs[0]);
  const auto f = extract_features(m);
  for (int i = 0; i < kNumFeatures; ++i)
    EXPECT_DOUBLE_EQ(corpus.records[0].features[i], f[i]);
}

TEST(LabelCollector, ProgressCallbackFires) {
  std::size_t calls = 0, last_total = 0;
  CollectOptions opts;
  opts.progress = [&](std::size_t done, std::size_t total) {
    ++calls;
    EXPECT_EQ(done, calls);
    last_total = total;
  };
  collect_corpus(tiny_plan(), opts);
  EXPECT_EQ(calls, 6u);
  EXPECT_EQ(last_total, 6u);
}

TEST(LabelCollector, BestAmongPicksArgmin) {
  const auto corpus = collect_corpus(tiny_plan());
  const auto& rec = corpus.records[0];
  const int best = rec.best_among(0, Precision::kDouble, kAllFormats);
  const double best_t =
      rec.time(0, Precision::kDouble, kAllFormats[static_cast<std::size_t>(best)]);
  for (Format f : kAllFormats)
    EXPECT_LE(best_t, rec.time(0, Precision::kDouble, f));
}

TEST(LabelCollector, GflopsConsistentWithTime) {
  const auto corpus = collect_corpus(tiny_plan());
  const auto& rec = corpus.records[0];
  const double t = rec.time(1, Precision::kSingle, Format::kCsr);
  EXPECT_NEAR(rec.gflops(1, Precision::kSingle, Format::kCsr),
              2.0 * rec.nnz / t / 1e9, 1e-9);
}

TEST(LabelCollector, CsvRoundTrip) {
  const auto corpus = collect_corpus(tiny_plan());
  const auto path = testing::TempDir() + "/spmvml_corpus_test.csv";
  save_corpus_csv(path, corpus, tiny_plan().size());
  const auto loaded = load_corpus_csv(path);
  ASSERT_EQ(loaded.size(), corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(loaded.records[i].seed, corpus.records[i].seed);
    EXPECT_EQ(loaded.records[i].bucket, corpus.records[i].bucket);
    for (int f = 0; f < kNumFeatures; ++f)
      EXPECT_DOUBLE_EQ(loaded.records[i].features[f],
                       corpus.records[i].features[f]);
    EXPECT_DOUBLE_EQ(loaded.records[i].time(1, Precision::kDouble,
                                            Format::kCsr5),
                     corpus.records[i].time(1, Precision::kDouble,
                                            Format::kCsr5));
  }
  std::remove(path.c_str());
}

TEST(LabelCollector, LoadOrCollectUsesCache) {
  const auto path = testing::TempDir() + "/spmvml_cache_test.csv";
  std::remove(path.c_str());
  const auto plan = tiny_plan();
  const auto first = load_or_collect(path, plan);
  EXPECT_TRUE(std::filesystem::exists(path));
  const auto second = load_or_collect(path, plan);
  ASSERT_EQ(first.size(), second.size());
  EXPECT_DOUBLE_EQ(first.records[2].time(0, Precision::kSingle, Format::kEll),
                   second.records[2].time(0, Precision::kSingle, Format::kEll));
  // A different-sized plan invalidates the cache.
  const auto bigger = load_or_collect(path, make_small_plan(8, 77));
  EXPECT_EQ(bigger.size(), 8u);
  std::remove(path.c_str());
}

TEST(LabelCollector, MemoryLimitExcludesMonsterEllImages) {
  // A power-law matrix with a huge max row makes the ELL image explode;
  // a tight limit must drop it while keeping the small matrices.
  CorpusPlan plan = tiny_plan();
  GenSpec monster;
  monster.family = MatrixFamily::kPowerLaw;
  monster.rows = 60000;
  monster.cols = 60000;
  monster.row_mu = 10;
  monster.alpha = 1.3;
  monster.seed = 314;
  plan.specs.push_back(monster);
  plan.bucket_of.push_back(3);

  CollectOptions strict;
  strict.format_memory_limit = 50000000;  // 50 MB budget
  const auto filtered = collect_corpus(plan, strict);
  CollectOptions off;
  off.format_memory_limit = 0;
  const auto unfiltered = collect_corpus(plan, off);
  EXPECT_EQ(unfiltered.size(), plan.size());
  EXPECT_LT(filtered.size(), unfiltered.size());
}

TEST(LabelCollector, CacheHeaderRoundTripsHashAndDone) {
  const auto plan = tiny_plan();
  const auto corpus = collect_corpus(plan);
  const auto path = testing::TempDir() + "/spmvml_cache_header_test.csv";
  save_corpus_csv(path, corpus, plan.size(), plan_fingerprint(plan), 4);
  std::size_t size = 0, done = 0;
  std::uint64_t hash = 0;
  load_corpus_csv(path, &size, &hash, &done);
  EXPECT_EQ(size, plan.size());
  EXPECT_EQ(hash, plan_fingerprint(plan));
  EXPECT_EQ(done, 4u);
  std::remove(path.c_str());
}

TEST(LabelCollector, LoadOrCollectInvalidatesOnPlanContentChange) {
  // Two plans with identical sizes but different seeds: a stale cache from
  // the first must not be served for the second.
  const auto path = testing::TempDir() + "/spmvml_cache_content_test.csv";
  std::remove(path.c_str());
  const auto plan_a = make_small_plan(6, 77);
  const auto plan_b = make_small_plan(6, 78);
  ASSERT_EQ(plan_a.size(), plan_b.size());
  load_or_collect(path, plan_a);
  const auto from_b = load_or_collect(path, plan_b);
  ASSERT_EQ(from_b.size(), plan_b.size());
  for (std::size_t i = 0; i < plan_b.size(); ++i)
    EXPECT_EQ(from_b.records[i].seed, plan_b.specs[i].seed);
  // And the rewritten cache now serves plan_b from disk.
  const auto again = load_or_collect(path, plan_b);
  EXPECT_EQ(again.stats.attempted, 0u);
  std::remove(path.c_str());
}

TEST(LabelCollector, LoadOrCollectResumesPartialCache) {
  // A partial checkpoint left at the cache path is picked up and finished
  // instead of being recollected from scratch.
  const auto path = testing::TempDir() + "/spmvml_cache_partial_test.csv";
  std::remove(path.c_str());
  const auto plan = make_small_plan(10, 55);
  const auto full = collect_corpus(plan);

  LabeledCorpus partial;
  partial.records.assign(full.records.begin(), full.records.begin() + 7);
  save_corpus_csv(path, partial, plan.size(), plan_fingerprint(plan), 7);

  const auto resumed = load_or_collect(path, plan);
  EXPECT_EQ(resumed.stats.resumed_records, 7u);
  EXPECT_EQ(resumed.stats.attempted, plan.size() - 7);
  ASSERT_EQ(resumed.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i)
    EXPECT_DOUBLE_EQ(resumed.records[i].time(0, Precision::kDouble,
                                             Format::kCsr),
                     full.records[i].time(0, Precision::kDouble, Format::kCsr));
  std::remove(path.c_str());
}

TEST(LabelCollector, DeterministicAcrossRuns) {
  const auto a = collect_corpus(tiny_plan());
  const auto b = collect_corpus(tiny_plan());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_DOUBLE_EQ(a.records[i].time(0, Precision::kDouble, Format::kHyb),
                     b.records[i].time(0, Precision::kDouble, Format::kHyb));
}

TEST(LabelCollector, BackoffDelayClampsLargeAttemptCounts) {
  CollectOptions opts;
  opts.backoff_base_s = 0.25;
  opts.backoff_cap_s = 2.0;
  EXPECT_DOUBLE_EQ(backoff_delay_s(opts, 0), 0.25);
  EXPECT_DOUBLE_EQ(backoff_delay_s(opts, 1), 0.5);
  EXPECT_DOUBLE_EQ(backoff_delay_s(opts, 3), 2.0);  // capped
  // 1 << attempt would be UB from attempt 31 on; the schedule must
  // saturate at the cap for arbitrarily large retry budgets instead.
  for (int attempt : {31, 32, 63, 64, 100, 100000}) {
    const double d = backoff_delay_s(opts, attempt);
    EXPECT_TRUE(std::isfinite(d));
    EXPECT_DOUBLE_EQ(d, 2.0);
  }
  opts.backoff_base_s = 0.0;
  EXPECT_DOUBLE_EQ(backoff_delay_s(opts, 100), 0.0);
}

TEST(LabelCollector, RetryBudgetSurvivesHugeMaxRetries) {
  // A retry budget far past the old 1 << attempt overflow point must
  // neither crash nor change results (backoff disabled keeps it fast;
  // the fault model resolves transients well before 40 attempts).
  CollectOptions opts;
  opts.faults.enabled = true;
  opts.faults.transient_rate = 0.3;
  opts.max_retries = 1000;
  const auto corpus = collect_corpus(tiny_plan(), opts);
  EXPECT_EQ(corpus.size(), 6u);
  EXPECT_EQ(corpus.stats.transient_cells, 0u);  // all transients resolved
}

/// Collection options with enough fault traffic to exercise the
/// retry/backoff machinery in the parallel pipeline.
CollectOptions faulty_options() {
  CollectOptions opts;
  opts.faults.enabled = true;
  opts.faults.transient_rate = 0.2;
  opts.backoff_base_s = 0.001;
  opts.backoff_cap_s = 0.01;
  return opts;
}

std::string collect_to_csv(const CorpusPlan& plan, CollectOptions opts,
                           int threads, const std::string& path) {
  opts.threads = threads;
  const auto corpus = collect_corpus(plan, opts);
  save_corpus_csv(path, corpus, plan.size(), plan_fingerprint(plan),
                  plan.size());
  std::ifstream in(path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

TEST(ParallelCollector, ByteIdenticalAcrossThreadCounts) {
  const auto plan = make_small_plan(16, 321);
  const auto path = testing::TempDir() + "/spmvml_parallel_det.csv";
  const std::string serial = collect_to_csv(plan, faulty_options(), 1, path);
  const std::string two = collect_to_csv(plan, faulty_options(), 2, path);
  const std::string eight = collect_to_csv(plan, faulty_options(), 8, path);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, eight);
  std::remove(path.c_str());
}

TEST(ParallelCollector, StatsMatchSerialRun) {
  const auto plan = make_small_plan(12, 99);
  CollectOptions serial = faulty_options();
  serial.threads = 1;
  CollectOptions parallel = faulty_options();
  parallel.threads = 4;
  const auto a = collect_corpus(plan, serial);
  const auto b = collect_corpus(plan, parallel);
  EXPECT_EQ(a.stats.attempted, b.stats.attempted);
  EXPECT_EQ(a.stats.kept, b.stats.kept);
  EXPECT_EQ(a.stats.failed_cells, b.stats.failed_cells);
  EXPECT_EQ(a.stats.transient_cells, b.stats.transient_cells);
  EXPECT_EQ(a.stats.transient_retries, b.stats.transient_retries);
}

TEST(ParallelCollector, ProgressIsMonotonicAndComplete) {
  const auto plan = make_small_plan(10, 5);
  CollectOptions opts = faulty_options();
  opts.threads = 4;
  std::size_t calls = 0, last = 0;
  opts.progress = [&](std::size_t done, std::size_t total) {
    ++calls;
    EXPECT_GT(done, last);
    last = done;
    EXPECT_EQ(total, 10u);
  };
  collect_corpus(plan, opts);
  EXPECT_EQ(calls, 10u);
  EXPECT_EQ(last, 10u);
}

TEST(ParallelCollector, ProgressCallbackIsSerialized) {
  // The CollectOptions::progress contract: with threads > 1 the callback
  // runs on worker threads but is never invoked concurrently. The
  // in-flight flag would trip if two workers ever overlapped; the sleep
  // widens any such window far beyond scheduler noise.
  const auto plan = make_small_plan(12, 21);
  CollectOptions opts = faulty_options();
  opts.threads = 8;
  std::atomic<bool> in_flight{false};
  std::atomic<bool> overlapped{false};
  std::size_t calls = 0;
  opts.progress = [&](std::size_t, std::size_t) {
    if (in_flight.exchange(true)) overlapped = true;
    ++calls;  // plain increment on purpose: serialization makes it safe
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    in_flight = false;
  };
  collect_corpus(plan, opts);
  EXPECT_FALSE(overlapped.load());
  EXPECT_EQ(calls, 12u);
}

TEST(ParallelCollector, ThrowingProgressCancelsWithoutFurtherCalls) {
  // A throwing callback cancels the run: the exception propagates out of
  // collect_corpus and no later (higher-`done`) progress call arrives
  // while the pool drains.
  const auto plan = make_small_plan(12, 22);
  CollectOptions opts = faulty_options();
  opts.threads = 8;
  std::atomic<bool> thrown{false};
  std::atomic<std::size_t> calls_after_throw{0};
  opts.progress = [&](std::size_t done, std::size_t) {
    if (thrown.load()) ++calls_after_throw;
    if (done == 4) {
      thrown = true;
      throw std::runtime_error("simulated cancel");
    }
  };
  EXPECT_THROW(collect_corpus(plan, opts), std::runtime_error);
  EXPECT_EQ(calls_after_throw.load(), 0u);
}

TEST(ParallelCollector, ResumesPartialCheckpointIdentically) {
  // A checkpoint prefix left by a previous (killed) run is picked up by
  // the parallel collector and completed to the same corpus as an
  // uninterrupted run.
  const auto path = testing::TempDir() + "/spmvml_parallel_resume.csv";
  std::remove(path.c_str());
  const auto plan = make_small_plan(12, 404);
  CollectOptions opts = faulty_options();
  opts.threads = 8;
  const auto full = collect_corpus(plan, opts);

  LabeledCorpus partial;
  partial.records.assign(full.records.begin(), full.records.begin() + 5);
  save_corpus_csv(path, partial, plan.size(), plan_fingerprint(plan), 5);
  CollectOptions resume_opts = opts;
  resume_opts.checkpoint_path = path;
  const auto resumed = collect_corpus(plan, resume_opts);
  EXPECT_EQ(resumed.stats.resumed_records, 5u);
  ASSERT_EQ(resumed.size(), full.size());
  for (std::size_t i = 0; i < full.size(); ++i)
    for (Format f : kAllFormats)
      EXPECT_DOUBLE_EQ(resumed.records[i].time(1, Precision::kSingle, f),
                       full.records[i].time(1, Precision::kSingle, f));
  std::remove(path.c_str());
}

TEST(ParallelCollector, KillMidRunThenResumeMatchesUninterrupted) {
  // Emulate a mid-run kill: a progress callback that throws once enough
  // matrices finished. The collector cancels, rethrows, and leaves the
  // longest-prefix checkpoint on disk; a fresh run resumes from it and
  // must produce the same corpus as a run that was never interrupted.
  const auto path = testing::TempDir() + "/spmvml_parallel_kill.csv";
  std::remove(path.c_str());
  const auto plan = make_small_plan(14, 777);

  CollectOptions base = faulty_options();
  base.threads = 8;
  const auto uninterrupted = collect_corpus(plan, base);

  CollectOptions killed = base;
  killed.checkpoint_path = path;
  killed.checkpoint_every = 3;
  killed.progress = [](std::size_t done, std::size_t) {
    if (done >= 8) throw std::runtime_error("simulated kill");
  };
  EXPECT_THROW(collect_corpus(plan, killed), std::runtime_error);
  EXPECT_TRUE(std::filesystem::exists(path));

  CollectOptions resume = base;
  resume.checkpoint_path = path;
  const auto resumed = collect_corpus(plan, resume);
  EXPECT_GT(resumed.stats.resumed_records, 0u);
  ASSERT_EQ(resumed.size(), uninterrupted.size());
  for (std::size_t i = 0; i < resumed.size(); ++i) {
    EXPECT_EQ(resumed.records[i].seed, uninterrupted.records[i].seed);
    for (int a = 0; a < kNumArchs; ++a)
      for (Format f : kAllFormats)
        EXPECT_DOUBLE_EQ(
            resumed.records[i].time(a, Precision::kDouble, f),
            uninterrupted.records[i].time(a, Precision::kDouble, f));
  }
  std::remove(path.c_str());
}

TEST(ParallelCollector, ThreadsZeroReadsEnvironment) {
  // threads == 0 defers to SPMVML_THREADS (default 1 → serial path);
  // either way the corpus matches the explicit serial run.
  const auto plan = make_small_plan(6, 11);
  CollectOptions auto_opts = faulty_options();
  auto_opts.threads = 0;
  CollectOptions serial = faulty_options();
  serial.threads = 1;
  const auto a = collect_corpus(plan, auto_opts);
  const auto b = collect_corpus(plan, serial);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_DOUBLE_EQ(a.records[i].time(0, Precision::kSingle, Format::kCoo),
                     b.records[i].time(0, Precision::kSingle, Format::kCoo));
}

}  // namespace
}  // namespace spmvml
