// Performance model + indirect classification tests.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "core/indirect.hpp"
#include "core/perf_model.hpp"
#include "ml/metrics.hpp"

namespace spmvml {
namespace {

const LabeledCorpus& shared_corpus() {
  static const LabeledCorpus corpus = collect_corpus(make_small_plan(50, 808));
  return corpus;
}

TEST(PerfModel, PredictsPositiveSeconds) {
  PerfModel model(RegressorKind::kDecisionTree, FeatureSet::kSet12,
                  kAllFormats, true);
  model.fit(shared_corpus(), 0, Precision::kDouble);
  for (const auto& rec : shared_corpus().records) {
    for (Format f : kAllFormats)
      EXPECT_GT(model.predict_seconds(rec.features, f), 0.0);
  }
}

TEST(PerfModel, InSampleRmeIsSmallForTrees) {
  PerfModel model(RegressorKind::kDecisionTree, FeatureSet::kSet123,
                  kAllFormats, true);
  model.fit(shared_corpus(), 1, Precision::kDouble);
  std::vector<double> measured, predicted;
  for (const auto& rec : shared_corpus().records) {
    measured.push_back(rec.time(1, Precision::kDouble, Format::kCsr));
    predicted.push_back(model.predict_seconds(rec.features, Format::kCsr));
  }
  EXPECT_LT(ml::relative_mean_error(measured, predicted), 0.25);
}

TEST(PerfModel, PredictAllMatchesPerFormatCalls) {
  PerfModel model(RegressorKind::kDecisionTree, FeatureSet::kSet1,
                  kAllFormats, true);
  model.fit(shared_corpus(), 0, Precision::kSingle);
  const auto& rec = shared_corpus().records[3];
  const auto all = model.predict_all(rec.features);
  ASSERT_EQ(all.size(), kAllFormats.size());
  for (std::size_t i = 0; i < kAllFormats.size(); ++i)
    EXPECT_DOUBLE_EQ(all[i], model.predict_seconds(rec.features,
                                                   kAllFormats[i]));
}

TEST(PerfModel, UnmodeledFormatThrows) {
  PerfModel model(RegressorKind::kDecisionTree, FeatureSet::kSet1,
                  kBasicFormats, true);
  model.fit(shared_corpus(), 0, Precision::kSingle);
  EXPECT_THROW(model.predict_seconds(shared_corpus().records[0].features,
                                     Format::kCoo),
               Error);
}

TEST(JointPerfModel, PredictsPerFormatDifferences) {
  JointPerfModel model(RegressorKind::kDecisionTree, FeatureSet::kSet12,
                       kAllFormats, true);
  model.fit(shared_corpus(), 0, Precision::kDouble);
  const auto& rec = shared_corpus().records[1];
  // Predictions must at least vary across formats for a skewed matrix.
  double lo = 1e300, hi = 0.0;
  for (Format f : kAllFormats) {
    const double t = model.predict_seconds(rec.features, f);
    EXPECT_GT(t, 0.0);
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  EXPECT_GT(hi / lo, 1.0);
}

TEST(IndirectSelector, SelectsModeledFormat) {
  PerfModel model(RegressorKind::kDecisionTree, FeatureSet::kSet123,
                  kAllFormats, true);
  model.fit(shared_corpus(), 0, Precision::kDouble);
  IndirectSelector sel(std::move(model));
  const Format f = sel.select(shared_corpus().records[0].features);
  EXPECT_NE(std::find(kAllFormats.begin(), kAllFormats.end(), f),
            kAllFormats.end());
}

TEST(ToleranceAccuracy, ExactAndTolerantScoring) {
  // Sample 0: chose best (10 vs 12). Sample 1: chose 10.4 vs best 10.
  const std::vector<std::vector<double>> times = {{10.0, 12.0},
                                                  {10.4, 10.0}};
  const std::vector<int> chosen = {0, 0};
  EXPECT_DOUBLE_EQ(tolerance_accuracy(chosen, times, 0.0), 0.5);
  EXPECT_DOUBLE_EQ(tolerance_accuracy(chosen, times, 0.05), 1.0);
}

TEST(ToleranceAccuracy, RejectsBadChoice) {
  EXPECT_THROW(tolerance_accuracy({5}, {{1.0, 2.0}}, 0.0), Error);
}

TEST(SelectionSlowdowns, RatiosAgainstBest) {
  const std::vector<std::vector<double>> times = {{10.0, 20.0},
                                                  {30.0, 10.0}};
  const auto s = selection_slowdowns({1, 1}, times);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[0], 2.0);
  EXPECT_DOUBLE_EQ(s[1], 1.0);
}

}  // namespace
}  // namespace spmvml
