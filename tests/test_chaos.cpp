// Chaos-framework tests: scenario parsing (typos are errors, never
// silent no-ops), site-name round-trips, seeded determinism of the
// injection draw, windowed rules against the engine clock, global
// engine install/override semantics, and the fail-open latency helper.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/chaos/chaos.hpp"
#include "common/error.hpp"

namespace spmvml {
namespace {

using chaos::Engine;
using chaos::Fault;
using chaos::FaultKind;
using chaos::Scenario;
using chaos::Site;

Scenario one_rule(Site site, FaultKind kind, double rate) {
  Scenario s;
  s.seed = 42;
  chaos::Rule r;
  r.site = site;
  r.kind = kind;
  r.rate = rate;
  if (kind == FaultKind::kLatency) r.latency_ms = 1.0;
  s.rules.push_back(r);
  return s;
}

TEST(ChaosScenario, ParsesSeedAndRules) {
  const auto s = Scenario::parse_string(
      "# comment\n"
      "\n"
      "seed 20180807\n"
      "rule site=feature_extract kind=error rate=0.5\n"
      "rule site=inference kind=latency rate=1 latency_ms=20 start_s=2 "
      "end_s=2.5\n");
  EXPECT_EQ(s.seed, 20180807u);
  ASSERT_EQ(s.rules.size(), 2u);
  EXPECT_EQ(s.rules[0].site, Site::kFeatureExtract);
  EXPECT_EQ(s.rules[0].kind, FaultKind::kError);
  EXPECT_DOUBLE_EQ(s.rules[0].rate, 0.5);
  EXPECT_FALSE(s.rules[0].windowed());
  EXPECT_EQ(s.rules[1].site, Site::kInference);
  EXPECT_EQ(s.rules[1].kind, FaultKind::kLatency);
  EXPECT_DOUBLE_EQ(s.rules[1].latency_ms, 20.0);
  EXPECT_DOUBLE_EQ(s.rules[1].start_s, 2.0);
  EXPECT_DOUBLE_EQ(s.rules[1].end_s, 2.5);
  EXPECT_TRUE(s.rules[1].windowed());
}

TEST(ChaosScenario, TyposAreParseErrorsNotNoOps) {
  // A typo that silently disabled a fault would run the experiment
  // without the experiment; every malformed directive must throw.
  const std::vector<std::string> bad = {
      "rule site=nope kind=error rate=0.5\n",         // unknown site
      "rule site=inference kind=explode rate=0.5\n",  // unknown kind
      "rule site=inference kind=error rate=2\n",      // rate out of range
      "rule site=inference kind=error rate=0.5 bogus_key=1\n",
      "rule kind=error rate=0.5\n",                        // missing site
      "rule site=inference kind=error\n",                  // missing rate
      "rule site=inference kind=latency rate=0.5\n",       // no latency_ms
      "rule site=inference kind=error rate=0.5 start_s=3 end_s=2\n",
      "frobnicate 12\n",  // unknown directive
      "seed banana\n",
  };
  for (const auto& text : bad) {
    try {
      Scenario::parse_string(text);
      FAIL() << "accepted: " << text;
    } catch (const Error& e) {
      EXPECT_EQ(e.category(), ErrorCategory::kParse) << text;
    }
  }
}

TEST(ChaosScenario, SiteNamesRoundTrip) {
  std::set<std::string> names;
  for (int i = 0; i < chaos::kNumSites; ++i) {
    const auto site = static_cast<Site>(i);
    const std::string name = chaos::site_name(site);
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
    const auto back = chaos::site_from_name(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, site);
  }
  EXPECT_FALSE(chaos::site_from_name("not_a_site").has_value());
}

TEST(ChaosEngine, SameSeedSameFaultSequence) {
  const auto make = [] {
    return Scenario::parse_string(
        "seed 7\n"
        "rule site=inference kind=error rate=0.3\n"
        "rule site=feature_extract kind=latency rate=0.5 latency_ms=1\n");
  };
  Engine a(make()), b(make());
  for (std::uint64_t id = 0; id < 512; ++id) {
    for (Site site : {Site::kInference, Site::kFeatureExtract}) {
      const Fault fa = a.decide(site, id), fb = b.decide(site, id);
      EXPECT_EQ(fa.kind, fb.kind);
      EXPECT_DOUBLE_EQ(fa.latency_ms, fb.latency_ms);
    }
  }
}

TEST(ChaosEngine, DifferentSeedsDisagreeSomewhere) {
  Engine a(one_rule(Site::kInference, FaultKind::kError, 0.5));
  auto s = one_rule(Site::kInference, FaultKind::kError, 0.5);
  s.seed = 43;
  Engine b(std::move(s));
  int disagreements = 0;
  for (std::uint64_t id = 0; id < 512; ++id)
    if (bool(a.decide(Site::kInference, id)) !=
        bool(b.decide(Site::kInference, id)))
      ++disagreements;
  EXPECT_GT(disagreements, 0);
}

TEST(ChaosEngine, RateIsRespectedApproximately) {
  Engine e(one_rule(Site::kInference, FaultKind::kError, 0.25));
  int hits = 0;
  const int n = 4000;
  for (std::uint64_t id = 0; id < n; ++id)
    if (e.decide(Site::kInference, id)) ++hits;
  const double observed = static_cast<double>(hits) / n;
  EXPECT_NEAR(observed, 0.25, 0.05);
}

TEST(ChaosEngine, RateZeroNeverFiresRateOneAlwaysFires) {
  Engine never(one_rule(Site::kMaterialize, FaultKind::kError, 0.0));
  Engine always(one_rule(Site::kMaterialize, FaultKind::kError, 1.0));
  for (std::uint64_t id = 0; id < 256; ++id) {
    EXPECT_FALSE(bool(never.decide(Site::kMaterialize, id)));
    EXPECT_TRUE(bool(always.decide(Site::kMaterialize, id)));
  }
}

TEST(ChaosEngine, OtherSitesAreUntouched) {
  Engine e(one_rule(Site::kInference, FaultKind::kError, 1.0));
  EXPECT_TRUE(bool(e.decide(Site::kInference, 1)));
  EXPECT_FALSE(bool(e.decide(Site::kFeatureExtract, 1)));
  EXPECT_FALSE(bool(e.decide(Site::kRegistrySwap, 1)));
}

TEST(ChaosEngine, WithAttemptRerollsTransients) {
  // A retry must get fresh dice (the PR 1 transient contract): at rate
  // 0.5 some identity that faults on attempt 0 must pass on attempt 1.
  Engine e(one_rule(Site::kFeatureExtract, FaultKind::kError, 0.5));
  bool saw_reroll = false;
  for (std::uint64_t id = 0; id < 64 && !saw_reroll; ++id) {
    const bool first =
        bool(e.decide(Site::kFeatureExtract, chaos::with_attempt(id, 0)));
    const bool second =
        bool(e.decide(Site::kFeatureExtract, chaos::with_attempt(id, 1)));
    saw_reroll = first && !second;
  }
  EXPECT_TRUE(saw_reroll);
}

TEST(ChaosEngine, WindowedRuleOnlyFiresInsideWindow) {
  auto s = one_rule(Site::kInference, FaultKind::kError, 1.0);
  s.rules[0].start_s = 3600.0;  // far future: never reached in-test
  s.rules[0].end_s = 7200.0;
  Engine e(std::move(s));
  e.start();
  EXPECT_FALSE(bool(e.decide(Site::kInference, 1)));
  EXPECT_GE(e.elapsed_s(), 0.0);
  EXPECT_LT(e.elapsed_s(), 3600.0);
}

TEST(ChaosEngine, FirstMatchingRuleWins) {
  Scenario s;
  s.seed = 1;
  chaos::Rule lat;
  lat.site = Site::kInference;
  lat.kind = FaultKind::kLatency;
  lat.rate = 1.0;
  lat.latency_ms = 5.0;
  chaos::Rule err = lat;
  err.kind = FaultKind::kError;
  err.latency_ms = 0.0;
  s.rules = {lat, err};
  Engine e(std::move(s));
  const Fault f = e.decide(Site::kInference, 9);
  EXPECT_EQ(f.kind, FaultKind::kLatency);
  EXPECT_DOUBLE_EQ(f.latency_ms, 5.0);
}

TEST(ChaosGlobal, DisabledMeansNoFaults) {
  chaos::ScopedGlobalEngine scoped(nullptr);
  EXPECT_EQ(chaos::global(), nullptr);
  EXPECT_FALSE(bool(chaos::hit(Site::kInference, 123)));
}

TEST(ChaosGlobal, ScopedEngineInstallsAndRestores) {
  auto engine = std::make_shared<Engine>(
      one_rule(Site::kInference, FaultKind::kError, 1.0));
  {
    chaos::ScopedGlobalEngine scoped(engine);
    EXPECT_EQ(chaos::global(), engine);
    EXPECT_TRUE(bool(chaos::hit(Site::kInference, 123)));
  }
  EXPECT_NE(chaos::global(), engine);
  EXPECT_FALSE(bool(chaos::hit(Site::kInference, 123)));
}

TEST(ChaosGlobal, InstallFromEnvParsesScenarioFile) {
  const std::string path = "chaos_env_test.tmp.txt";
  {
    std::ofstream out(path);
    out << "seed 99\nrule site=oracle_measure kind=error rate=1\n";
  }
  setenv("SPMVML_CHAOS", path.c_str(), 1);
  auto engine = chaos::install_from_env();
  unsetenv("SPMVML_CHAOS");
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->scenario().seed, 99u);
  ASSERT_EQ(engine->scenario().rules.size(), 1u);
  EXPECT_EQ(engine->scenario().rules[0].site, Site::kOracleMeasure);
  chaos::set_global(nullptr);
  std::remove(path.c_str());
}

TEST(ChaosGlobal, InstallFromEnvUnsetIsDisabled) {
  unsetenv("SPMVML_CHAOS");
  EXPECT_EQ(chaos::install_from_env(), nullptr);
}

TEST(ChaosGlobal, ApplyLatencyIgnoresNonLatencyFaults) {
  Fault f;
  f.kind = FaultKind::kError;
  chaos::apply_latency(f);  // must not sleep or throw
  f.kind = FaultKind::kNone;
  chaos::apply_latency(f);
}

TEST(ChaosPrimitives, IdentityHashIsStableAndSpreads) {
  EXPECT_EQ(chaos::identity_hash("r1"), chaos::identity_hash("r1"));
  EXPECT_NE(chaos::identity_hash("r1"), chaos::identity_hash("r2"));
  EXPECT_NE(chaos::with_attempt(7, 0), chaos::with_attempt(7, 1));
}

}  // namespace
}  // namespace spmvml
