// SVM tests: separable problems, RBF nonlinearity, one-vs-one multiclass,
// vote-share outputs.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/metrics.hpp"
#include "ml/svm.hpp"

namespace spmvml::ml {
namespace {

TEST(Svm, LinearlySeparableBinary) {
  Matrix x;
  std::vector<int> y;
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const int k = i % 2;
    x.push_back({(k == 0 ? -2.0 : 2.0) + rng.normal(0.0, 0.5),
                 rng.normal(0.0, 0.5)});
    y.push_back(k);
  }
  SvmClassifier svm;
  svm.fit(x, y);
  EXPECT_GT(accuracy(y, svm.predict_batch(x)), 0.97);
}

TEST(Svm, RbfSolvesCircularConcept) {
  // Inner disc vs outer ring — not linearly separable.
  Matrix x;
  std::vector<int> y;
  Rng rng(2);
  for (int i = 0; i < 300; ++i) {
    const double r = (i % 2 == 0) ? rng.uniform(0.0, 1.0)
                                  : rng.uniform(2.0, 3.0);
    const double theta = rng.uniform(0.0, 6.28318);
    x.push_back({r * std::cos(theta), r * std::sin(theta)});
    y.push_back(i % 2);
  }
  SvmParams p;
  p.c = 100.0;
  p.gamma = 1.0;
  SvmClassifier svm(p);
  svm.fit(x, y);
  EXPECT_GT(accuracy(y, svm.predict_batch(x)), 0.95);
}

TEST(Svm, ThreeClassOneVsOne) {
  Matrix x;
  std::vector<int> y;
  Rng rng(3);
  const double cx[3] = {0.0, 5.0, 2.5};
  const double cy[3] = {0.0, 0.0, 4.0};
  for (int i = 0; i < 300; ++i) {
    const int k = i % 3;
    x.push_back({cx[k] + rng.normal(0.0, 0.6), cy[k] + rng.normal(0.0, 0.6)});
    y.push_back(k);
  }
  SvmClassifier svm;
  svm.fit(x, y);
  EXPECT_GT(accuracy(y, svm.predict_batch(x)), 0.95);
}

TEST(Svm, VoteSharesFormDistribution) {
  Matrix x;
  std::vector<int> y;
  Rng rng(4);
  for (int i = 0; i < 90; ++i) {
    const int k = i % 3;
    x.push_back({static_cast<double>(k) * 3.0 + rng.normal(0.0, 0.3)});
    y.push_back(k);
  }
  SvmClassifier svm;
  svm.fit(x, y);
  const auto votes = svm.predict_proba({3.0});
  ASSERT_EQ(votes.size(), 3u);
  double sum = 0.0;
  for (double v : votes) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Svm, HandlesClassMissingFromGrid) {
  // Labels 0 and 2 present, 1 absent: pairs with class 1 are skipped and
  // prediction still works over observed classes.
  Matrix x = {{0.0}, {0.1}, {5.0}, {5.1}, {0.05}, {5.05}};
  std::vector<int> y = {0, 0, 2, 2, 0, 2};
  SvmClassifier svm;
  svm.fit(x, y);
  EXPECT_EQ(svm.predict({0.0}), 0);
  EXPECT_EQ(svm.predict({5.0}), 2);
}

TEST(Svm, ScalesWildFeatureRanges) {
  // One feature in [0,1], one in [0, 1e7]: internal standardisation must
  // keep the informative small-range feature usable.
  Matrix x;
  std::vector<int> y;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const int k = i % 2;
    x.push_back({(k == 0 ? 0.2 : 0.8) + rng.normal(0.0, 0.05),
                 rng.uniform(0.0, 1e7)});
    y.push_back(k);
  }
  SvmClassifier svm;
  svm.fit(x, y);
  EXPECT_GT(accuracy(y, svm.predict_batch(x)), 0.9);
}

TEST(Svm, PredictBeforeFitThrows) {
  SvmClassifier svm;
  EXPECT_THROW(svm.predict({1.0}), Error);
}

}  // namespace
}  // namespace spmvml::ml
