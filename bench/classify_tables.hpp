// Shared driver for the classification-accuracy tables (IV–X): one table
// per feature set, rows = machine x precision, columns = the four model
// families, best cell(s) highlighted with '*' like the paper's bold.
#pragma once

#include <cstdio>
#include <span>
#include <vector>

#include "bench_util.hpp"

namespace spmvml::bench {

/// Paper accuracy for one (machine, precision) row, in model order
/// {decision tree, SVM, MLP, XGBoost}; used to print ours-vs-paper.
using PaperRow = std::array<int, 4>;

inline void run_classification_table(
    const std::string& title, const std::string& ref,
    std::span<const Format> candidates, FeatureSet set, bool drop_coo_best,
    const std::vector<PaperRow>& paper_rows) {
  banner(title, ref);
  const std::vector<ModelKind> models = {ModelKind::kDecisionTree,
                                         ModelKind::kSvm, ModelKind::kMlp,
                                         ModelKind::kXgboost};
  TablePrinter table({"Machine", "precision", "decs. tree (paper)",
                      "SVM (paper)", "MLP (paper)", "XGBST (paper)"});
  const auto configs = machine_configs();
  for (std::size_t c = 0; c < configs.size(); ++c) {
    const auto& cfg = configs[c];
    const auto study = make_classification_study(
        corpus(), cfg.arch, cfg.prec, candidates, set, drop_coo_best);
    std::vector<double> acc;
    double best = 0.0;
    for (ModelKind kind : models) {
      const double a = classify_accuracy(study, kind, 1000 + c);
      acc.push_back(a);
      best = std::max(best, a);
      std::printf("  [%s %s] %s: %.1f%%\n", cfg.label,
                  feature_set_name(set), model_name(kind), a * 100.0);
      std::fflush(stdout);
    }
    std::vector<std::string> row = {
        std::string(cfg.label).substr(0, 4),
        precision_name(cfg.prec)};
    for (std::size_t m = 0; m < models.size(); ++m) {
      std::string cell = TablePrinter::pct(acc[m], 0);
      if (acc[m] >= best - 1e-9) cell += "*";
      cell += " (" + std::to_string(paper_rows[c][m]) + "%)";
      row.push_back(std::move(cell));
    }
    table.add_row(std::move(row));
  }
  std::printf("\n%s", table.to_string().c_str());
  std::printf("(* = best model in the row; parentheses = paper's value)\n");
}

}  // namespace spmvml::bench
