// Supporting experiment for §IV-D: run the paper's GridSearchCV protocol
// (its exact XGBoost and SVM grids, 5-fold stratified CV) on the P100
// double-precision 7-format study and compare the tuned configuration
// against this library's defaults on a held-out test split.
#include <cstdio>

#include "bench_util.hpp"
#include "core/tuning.hpp"

using namespace spmvml;
using namespace spmvml::bench;

int main() {
  banner("GridSearchCV — the paper's §IV-D hyper-parameter protocol",
         "Nisa et al. 2018, §IV-D (grids for XGBoost and SVM)");

  const auto study = make_classification_study(
      corpus(), /*arch=*/1, Precision::kDouble, kAllFormats,
      FeatureSet::kSet12);
  const auto [train_idx, test_idx] = ml::split_indices(study.data, 0.2, 42);
  const auto train = study.data.subset(train_idx);
  const auto test = study.data.subset(test_idx);
  const int folds = fast() ? 3 : 5;

  TablePrinter table({"model", "best params (CV)", "CV acc", "test acc",
                      "default-params test acc"});
  for (ModelKind kind : {ModelKind::kXgboost, ModelKind::kSvm}) {
    std::printf("  tuning %s over %zu grid points (%d-fold CV)...\n",
                model_name(kind), paper_grid(kind, fast()).size(), folds);
    std::fflush(stdout);
    const auto result = tune_classifier(kind, train, folds, 42, fast());

    std::string params;
    for (const auto& [name, value] : result.best_params)
      params += name + "=" + TablePrinter::fmt(value, value < 1 ? 3 : 0) + " ";

    auto tuned = make_classifier_with(kind, result.best_params);
    tuned->fit(train.x, train.labels);
    const double tuned_acc =
        ml::accuracy(test.labels, tuned->predict_batch(test.x));

    auto defaults = make_classifier(kind, fast());
    defaults->fit(train.x, train.labels);
    const double default_acc =
        ml::accuracy(test.labels, defaults->predict_batch(test.x));

    table.add_row({model_name(kind), params,
                   TablePrinter::pct(result.best_score, 1),
                   TablePrinter::pct(tuned_acc, 1),
                   TablePrinter::pct(default_acc, 1)});
  }
  std::printf("\n%s", table.to_string().c_str());
  std::printf(
      "\nExpected: CV-selected configurations perform within a point or\n"
      "two of (or above) the library defaults — §IV-D's tuning protocol\n"
      "is reproducible but not load-bearing for the headline numbers.\n");
  return 0;
}
