// Supporting experiment for §VII: the CNN-based format selection of
// Zhao et al. (PPoPP'18), which the paper cites as the state of the art
// (93% CPU / 90% GPU accuracy) and argues its cheap-features approach
// matches via indirect classification (Table XIV).
//
// Trains a small convnet on 32x32 density images of the corpus matrices
// and compares held-out accuracy against XGBoost on the 11 hand-crafted
// features, for the P100 double-precision 7-format study.
#include <cstdio>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "features/image.hpp"
#include "ml/cnn.hpp"

using namespace spmvml;
using namespace spmvml::bench;

int main() {
  banner("CNN comparison — matrix-image classification (Zhao et al.)",
         "Nisa et al. 2018, §VII / Table XIV discussion (CNN: ~90% on GPU)");

  // Density images are not part of the label cache; regenerate matrices.
  // A reduced corpus keeps this a minutes-scale experiment.
  const double scale = fast() ? 0.05 : 0.4;
  const auto plan = make_corpus_plan(scale * corpus_scale(), root_seed());
  std::printf("rendering %zu matrices to 32x32 density images...\n",
              plan.size());
  const auto labeled = collect_corpus(plan);
  ml::ImageSet images;
  images.reserve(plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    images.push_back(density_image(generate(plan.specs[i]), 32));
    if ((i + 1) % 200 == 0) {
      std::printf("  %zu/%zu\n", i + 1, plan.size());
      std::fflush(stdout);
    }
  }

  const auto study = make_classification_study(
      labeled, /*arch=*/1, Precision::kDouble, kAllFormats,
      FeatureSet::kSet12);
  const auto [train_idx, test_idx] = ml::split_indices(study.data, 0.2, 9);

  // CNN on images.
  ml::ImageSet train_images;
  std::vector<int> train_labels;
  for (std::size_t i : train_idx) {
    train_images.push_back(images[i]);
    train_labels.push_back(study.data.labels[i]);
  }
  ml::CnnParams cp;
  cp.epochs = fast() ? 6 : 30;
  ml::CnnClassifier cnn(cp);
  std::printf("training CNN (%d epochs on %zu images)...\n", cp.epochs,
              train_images.size());
  std::fflush(stdout);
  cnn.fit(train_images, train_labels);

  std::vector<int> truth, cnn_pred;
  for (std::size_t i : test_idx) {
    truth.push_back(study.data.labels[i]);
    cnn_pred.push_back(cnn.predict(images[i]));
  }
  const double cnn_acc = ml::accuracy(truth, cnn_pred);

  // XGBoost on the 11 features (same split).
  const auto train = study.data.subset(train_idx);
  auto xgb = make_classifier(ModelKind::kXgboost, fast());
  xgb->fit(train.x, train.labels);
  std::vector<int> xgb_pred;
  for (std::size_t i : test_idx) xgb_pred.push_back(xgb->predict(study.data.x[i]));
  const double xgb_acc = ml::accuracy(truth, xgb_pred);

  TablePrinter table({"model", "input", "test accuracy", "paper reference"});
  table.add_row({"CNN (conv-conv-dense)", "32x32 density image",
                 TablePrinter::pct(cnn_acc, 1),
                 "Zhao et al.: ~90% (GPU)"});
  table.add_row({"XGBoost", "11 features (sets 1+2)",
                 TablePrinter::pct(xgb_acc, 1),
                 "Nisa et al.: 84-88%"});
  std::printf("\n%s", table.to_string().c_str());
  std::printf(
      "\nShape to reproduce: hand-crafted features match or beat the\n"
      "image CNN at this corpus size (Zhao et al. needed 9200 matrices\n"
      "to reach ~90%%), supporting the paper's conclusion that cheap\n"
      "features + inexpensive models are the better deployment trade.\n");
  return 0;
}
