// Perf gate for the parallel measurement pipeline: serial vs parallel
// corpus collection (the backoff-overlap win), the blocked feature scan
// vs a straight serial reference scan, and per-sample vs batched MLP
// forward passes. Results land in BENCH_pipeline.json.
//
// Collection with faults enabled spends most of its wall clock in
// transient-retry backoff; the serial collector blocks on every delay
// while the pool parks the matrix and runs another, so the speedup shows
// even on a single-core host. The bench also asserts the parallel corpus
// is byte-identical to the serial one — it is a pure speed knob.
//
// Built only with -DSPMVML_BENCH=ON:
//   ./build/bench/pipeline_bench [out.json]
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json_writer.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/timer.hpp"
#include "core/label_collector.hpp"
#include "features/features.hpp"
#include "ml/mlp.hpp"
#include "synth/corpus.hpp"
#include "synth/generators.hpp"

using namespace spmvml;

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Fault recipe that makes backoff the dominant serial cost, mirroring a
// flaky measurement backend: a quarter of cells need at least one retry.
CollectOptions bench_collect_options() {
  CollectOptions opts;
  opts.faults.enabled = true;
  opts.faults.transient_rate = 0.25;
  opts.max_retries = 6;
  opts.backoff_base_s = 0.004;
  opts.backoff_cap_s = 0.05;
  return opts;
}

double time_collect(const CorpusPlan& plan, int threads, std::string* csv) {
  CollectOptions opts = bench_collect_options();
  opts.threads = threads;
  WallTimer timer;
  const auto corpus = collect_corpus(plan, opts);
  const double s = timer.seconds();
  const std::string path = "pipeline_bench_corpus.tmp.csv";
  save_corpus_csv(path, corpus, plan.size());
  *csv = slurp(path);
  std::remove(path.c_str());
  return s;
}

// The pre-blocking extraction loop: one serial pass over every row,
// accumulating the same three structure streams. This is the baseline
// the blocked scan replaced.
double reference_scan_seconds(const Csr<double>& m, int reps) {
  double sink = 0.0;
  WallTimer timer;
  for (int rep = 0; rep < reps; ++rep) {
    StreamingStats row_len, chunks_per_row, chunk_size;
    for (index_t r = 0; r < m.rows(); ++r) {
      const index_t begin = m.row_ptr()[r], end = m.row_ptr()[r + 1];
      std::int64_t row_chunks = 0;
      index_t run = 0;
      for (index_t k = begin; k < end; ++k) {
        if (k == begin || m.col_idx()[k] != m.col_idx()[k - 1] + 1) {
          if (run > 0) chunk_size.add(static_cast<double>(run));
          run = 0;
          ++row_chunks;
        }
        ++run;
      }
      if (run > 0) chunk_size.add(static_cast<double>(run));
      row_len.add(static_cast<double>(end - begin));
      chunks_per_row.add(static_cast<double>(row_chunks));
    }
    sink += row_len.mean() + chunks_per_row.mean() + chunk_size.mean();
  }
  const double s = timer.seconds() / reps;
  if (sink == 12345.6789) std::printf("(unreachable)\n");  // defeat DCE
  return s;
}

int main_impl(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_pipeline.json";

  // --- Collection: serial vs 8 worker threads, byte-identical check. ---
  std::printf("== collect: 64 matrices, transient faults + backoff ==\n");
  const auto plan = make_small_plan(64, 2024);
  std::string serial_csv, parallel_csv;
  const double collect_serial_s = time_collect(plan, 1, &serial_csv);
  std::printf("  serial (1 thread):    %.3f s\n", collect_serial_s);
  const double collect_parallel_s = time_collect(plan, 8, &parallel_csv);
  std::printf("  parallel (8 threads): %.3f s\n", collect_parallel_s);
  const bool identical =
      !serial_csv.empty() && serial_csv == parallel_csv;
  const double collect_speedup = collect_serial_s / collect_parallel_s;
  std::printf("  speedup %.2fx, byte-identical: %s\n", collect_speedup,
              identical ? "yes" : "NO");

  // --- Feature extraction: blocked scan vs the serial reference. ---
  GenSpec spec;
  spec.family = MatrixFamily::kUniformRandom;
  spec.rows = 200000;
  spec.cols = 200000;
  spec.row_mu = 16.0;
  spec.seed = 99;
  const auto m = generate(spec);
  std::printf("== extract: %lld rows, %zu nnz ==\n",
              static_cast<long long>(m.rows()), m.values().size());
  const int reps = 10;
  const double extract_reference_s = reference_scan_seconds(m, reps);
  WallTimer timer;
  double feature_sink = 0.0;
  for (int rep = 0; rep < reps; ++rep)
    feature_sink += extract_features(m)[kNnzbTot];
  const double extract_blocked_s = timer.seconds() / reps;
  std::printf("  reference serial scan: %.4f s/pass\n", extract_reference_s);
  std::printf("  blocked scan:          %.4f s/pass (chunks %.0f)\n",
              extract_blocked_s, feature_sink / reps);

  // --- MLP: per-sample forward vs contiguous batched forward. ---
  const int n = 4096, in_dim = kNumFeatures, out_dim = 6, batch = 64;
  Rng rng(7);
  std::vector<double> xflat(static_cast<std::size_t>(n) * in_dim);
  for (double& v : xflat) v = rng.normal();
  ml::detail::MlpNet net;
  net.init(in_dim, out_dim, ml::MlpParams{});
  std::printf("== mlp forward: %d samples, 96/48/16 hidden ==\n", n);

  timer.reset();
  double per_sample_sink = 0.0;
  std::vector<double> row(static_cast<std::size_t>(in_dim));
  for (int i = 0; i < n; ++i) {
    std::copy(xflat.begin() + static_cast<std::ptrdiff_t>(i) * in_dim,
              xflat.begin() + static_cast<std::ptrdiff_t>(i + 1) * in_dim,
              row.begin());
    per_sample_sink += net.forward(row)[0];  // summed in the same order as
  }                                          // the batched loop below
  const double forward_per_sample_s = timer.seconds();

  timer.reset();
  double batched_sink = 0.0;
  ml::detail::MlpBatchScratch scratch;
  for (int i = 0; i < n; i += batch) {
    const int bsz = std::min(batch, n - i);
    const double* out = net.forward_batch(
        xflat.data() + static_cast<std::ptrdiff_t>(i) * in_dim, bsz, scratch);
    for (int r = 0; r < bsz; ++r)
      batched_sink += out[static_cast<std::ptrdiff_t>(r) * out_dim];
  }
  const double forward_batched_s = timer.seconds();
  const bool forward_matches = per_sample_sink == batched_sink;
  std::printf("  per-sample: %.4f s   batched: %.4f s (%.2fx, bitwise %s)\n",
              forward_per_sample_s, forward_batched_s,
              forward_per_sample_s / forward_batched_s,
              forward_matches ? "equal" : "DIFFERENT");

  // --- End-to-end batched training wall time (classifier fit). ---
  ml::Matrix xm(static_cast<std::size_t>(n));
  std::vector<int> y(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    xm[static_cast<std::size_t>(i)].assign(
        xflat.begin() + static_cast<std::ptrdiff_t>(i) * in_dim,
        xflat.begin() + static_cast<std::ptrdiff_t>(i + 1) * in_dim);
    y[static_cast<std::size_t>(i)] = i % out_dim;
  }
  ml::MlpParams fit_params;
  fit_params.epochs = 10;
  ml::MlpClassifier clf(fit_params);
  timer.reset();
  clf.fit(xm, y);
  const double fit_s = timer.seconds();
  std::printf("== mlp fit: 10 epochs over %d samples: %.3f s ==\n", n, fit_s);

  std::ofstream out(out_path);
  JsonWriter json(out);
  json.begin_object();
  json.key("collect");
  json.begin_object();
  json.kv("matrices", static_cast<std::uint64_t>(plan.size()));
  json.kv("serial_s", collect_serial_s);
  json.kv("parallel8_s", collect_parallel_s);
  json.kv("speedup", collect_speedup);
  json.kv("byte_identical", identical);
  json.end_object();
  json.key("extract");
  json.begin_object();
  json.kv("rows", static_cast<std::int64_t>(m.rows()));
  json.kv("nnz", static_cast<std::uint64_t>(m.values().size()));
  json.kv("reference_serial_s", extract_reference_s);
  json.kv("blocked_s", extract_blocked_s);
  json.end_object();
  json.key("train");
  json.begin_object();
  json.kv("samples", n);
  json.kv("forward_per_sample_s", forward_per_sample_s);
  json.kv("forward_batched_s", forward_batched_s);
  json.kv("forward_speedup", forward_per_sample_s / forward_batched_s);
  json.kv("forward_bitwise_equal", forward_matches);
  json.kv("fit_10_epochs_s", fit_s);
  json.end_object();
  json.end_object();
  out << '\n';
  std::printf("wrote %s\n", out_path.c_str());
  return identical && forward_matches ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return main_impl(argc, argv); }
