// Reproduces Tables XI, XII and XIII: the slowdown histogram of
// mispredicted formats on the Tesla P100 (double precision) for SVM,
// MLP ensemble and XGBoost, across the four feature sets.
#include <cstdio>

#include "bench_util.hpp"

using namespace spmvml;
using namespace spmvml::bench;

namespace {

void slowdown_table(const char* title, const char* ref, ModelKind kind) {
  banner(title, ref);
  const std::vector<std::pair<FeatureSet, const char*>> sets = {
      {FeatureSet::kSet1, "1"},
      {FeatureSet::kSet12, "2"},
      {FeatureSet::kSet123, "3"},
      {FeatureSet::kImportant, "Imp. Features"}};
  TablePrinter table({"feature set", "no slowdown", ">1x (cumulative)",
                      ">=1.2x", ">=1.5x", ">=2.0x"});
  for (const auto& [set, label] : sets) {
    const auto study = make_classification_study(
        corpus(), /*arch=*/1, Precision::kDouble, kAllFormats, set);
    const auto eval = classify_eval(study, kind, 77);
    const auto slowdowns = selection_slowdowns(eval.predicted, eval.times);
    const auto bins = ml::slowdown_bins(slowdowns);
    table.add_row({label, std::to_string(bins.no_slowdown),
                   std::to_string(bins.any_slowdown),
                   std::to_string(bins.ge_1_2), std::to_string(bins.ge_1_5),
                   std::to_string(bins.ge_2_0)});
    std::printf("  [%s] %s: mean slowdown %.3fx over %zu test samples\n",
                model_name(kind), label, ml::mean_slowdown(slowdowns),
                slowdowns.size());
    std::fflush(stdout);
  }
  std::printf("\n%s", table.to_string().c_str());
}

}  // namespace

int main() {
  // Note: a "no slowdown" here means the chosen format measured within
  // rounding of the best; counts scale with the test-set size (~20% of
  // the corpus), same as the paper's ~460 P100 test samples.
  slowdown_table(
      "Table XI — slowdowns from mispredictions, SVM, P100 double",
      "Nisa et al. 2018, Table XI (paper: set1 285/175/89/61/25, "
      "sets1+2 444/16/12/3/1, all 447/13/10/2/1, imp 440/20/14/4/2)",
      ModelKind::kSvm);
  slowdown_table(
      "Table XII — slowdowns from mispredictions, MLP ensemble, P100 double",
      "Nisa et al. 2018, Table XII (paper: set1 293/167/84/58/25, "
      "sets1+2 441/19/14/4/1, all 439/21/15/5/1, imp 446/14/10/3/1)",
      ModelKind::kMlpEnsemble);
  slowdown_table(
      "Table XIII — slowdowns from mispredictions, XGBoost, P100 double",
      "Nisa et al. 2018, Table XIII (paper: set1 274/186/92/65/29, "
      "sets1+2 446/14/10/3/1, all 446/14/10/3/1, imp 445/15/11/3/1)",
      ModelKind::kXgboost);

  std::printf(
      "\nShape to reproduce: with feature set 1 a large fraction of test\n"
      "matrices suffer slowdowns (many >1.2x); with richer sets nearly\n"
      "all mispredictions are mild and >=2x cases are rare.\n");
  return 0;
}
