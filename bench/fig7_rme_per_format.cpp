// Reproduces Fig. 7: per-format RME of the MLP-ensemble regressor when
// each of the seven formats is modeled separately, across the four feature
// sets, on both GPUs (double precision).
#include <cstdio>

#include "bench_util.hpp"

using namespace spmvml;
using namespace spmvml::bench;

namespace {

double format_rme(int arch, Format format, FeatureSet set,
                  std::uint64_t seed) {
  const auto study = make_format_regression_study(
      corpus(), arch, Precision::kDouble, format, set);
  const auto [train_idx, test_idx] = ml::split_indices(study.data, 0.2, seed);
  const auto train = study.data.subset(train_idx);
  auto model = make_regressor(RegressorKind::kMlpEnsemble, fast());
  model->fit(train.x, train.targets);
  std::vector<double> measured, predicted;
  for (std::size_t i : test_idx) {
    measured.push_back(study.seconds[i]);
    predicted.push_back(
        regression_target_to_seconds(model->predict(study.data.x[i])));
  }
  return ml::relative_mean_error(measured, predicted);
}

}  // namespace

int main() {
  banner(
      "Fig. 7 — per-format RME, MLP ensemble regressor, double precision",
      "Nisa et al. 2018, Fig. 7");

  const std::vector<FeatureSet> sets = {FeatureSet::kSet1, FeatureSet::kSet12,
                                        FeatureSet::kSet123,
                                        FeatureSet::kImportant};
  for (int arch = 0; arch < kNumArchs; ++arch) {
    const char* name = arch == 0 ? "K80c" : "P100";
    TablePrinter table({"format", "set 1", "sets 1+2", "sets 1+2+3",
                        "imp. features"});
    for (Format f : kAllFormats) {
      std::vector<std::string> row = {format_name(f)};
      for (FeatureSet set : sets) {
        const double rme = format_rme(arch, f, set, 23);
        row.push_back(TablePrinter::pct(rme, 1));
        std::printf("  [%s] %s x %s: %.1f%%\n", name, format_name(f),
                    feature_set_name(set), rme * 100.0);
        std::fflush(stdout);
      }
      table.add_row(std::move(row));
    }
    std::printf("\n%s (double precision):\n%s", name,
                table.to_string().c_str());
  }
  std::printf(
      "\nShape to reproduce: per-format RME low for every format (paper:\n"
      "CSR5 11-13%%, merge 9-11%%, CSR 8-11%%); feature set 1 worst.\n");
  return 0;
}
