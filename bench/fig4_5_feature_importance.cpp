// Reproduces Figs. 4 and 5: XGBoost feature importance (F score = split
// counts) over the 17 features, for both GPUs and both precisions, printed
// as sorted horizontal bars like the paper's plots.
#include <algorithm>
#include <cstdio>
#include <set>

#include "bench_util.hpp"
#include "ml/gbt.hpp"

using namespace spmvml;
using namespace spmvml::bench;

int main() {
  banner("Figs. 4–5 — XGBoost feature importance (F score), 17 features",
         "Nisa et al. 2018, Figs. 4 and 5");

  std::vector<std::vector<int>> top7_per_config;
  for (const auto& cfg : machine_configs()) {
    const auto study = make_classification_study(
        corpus(), cfg.arch, cfg.prec, kAllFormats, FeatureSet::kSet123);
    ml::GbtParams params;
    params.n_estimators = fast() ? 40 : 150;
    ml::GbtClassifier gbt(params);
    gbt.fit(study.data.x, study.data.labels);
    const auto importance = gbt.feature_importance_weight();

    std::vector<int> order(importance.size());
    for (std::size_t i = 0; i < order.size(); ++i)
      order[i] = static_cast<int>(i);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return importance[static_cast<std::size_t>(a)] >
             importance[static_cast<std::size_t>(b)];
    });
    top7_per_config.emplace_back(order.begin(), order.begin() + 7);

    std::printf("\n%s, %s — F score (split counts):\n", cfg.label,
                precision_name(cfg.prec));
    const double max_f =
        importance[static_cast<std::size_t>(order.front())];
    for (int id : order) {
      const double f = importance[static_cast<std::size_t>(id)];
      const int bars =
          max_f > 0 ? static_cast<int>(40.0 * f / max_f) : 0;
      std::printf("  %-11s %6.0f |%s\n", feature_name(id), f,
                  std::string(static_cast<std::size_t>(bars), '#').c_str());
    }
  }

  // The paper's key observation: the top-7 set is stable across machines
  // and precisions even though the ordering shifts.
  std::set<int> common(top7_per_config[0].begin(), top7_per_config[0].end());
  for (const auto& top : top7_per_config) {
    std::set<int> next;
    for (int id : top)
      if (common.count(id) > 0) next.insert(id);
    common = std::move(next);
  }
  std::printf("\nFeatures in the top-7 of ALL four configurations (%zu):\n  ",
              common.size());
  for (int id : common) std::printf("%s ", feature_name(id));
  std::printf(
      "\n\nShape to reproduce: top features stable across machines and\n"
      "precisions; a set-3 feature (nnzb_tot) ranks among them.\n");
  return 0;
}
