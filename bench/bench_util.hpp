// Shared plumbing for the experiment benches: corpus cache, experiment
// headers, and the train/evaluate helpers every table reuses.
#pragma once

#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/format_selector.hpp"
#include "core/indirect.hpp"
#include "core/perf_model.hpp"
#include "ml/metrics.hpp"

namespace spmvml::bench {

/// The (arch, precision) axes every results table iterates, in the
/// paper's row order: K80c single, K80c double, P100 single, P100 double.
struct MachineConfig {
  int arch;  // 0 = K80c, 1 = P100
  Precision prec;
  const char* label;
};
std::vector<MachineConfig> machine_configs();

/// Full-scale labeled corpus, cached next to the binary so only the first
/// bench run pays collection (~2 min at scale 1). Honours
/// SPMVML_CORPUS_SCALE and SPMVML_SEED.
const LabeledCorpus& corpus();

/// Print the standard experiment banner.
void banner(const std::string& experiment, const std::string& paper_ref);

/// Train `kind` on an 80% split of `study`, return held-out accuracy.
/// Deterministic in `seed`.
double classify_accuracy(const ClassificationStudy& study, ModelKind kind,
                         std::uint64_t seed);

/// Accuracy + the test-set predictions/times (for slowdown analysis).
struct EvalResult {
  double accuracy = 0.0;
  std::vector<int> truth;
  std::vector<int> predicted;
  std::vector<std::vector<double>> times;  // candidate times per test row
};
EvalResult classify_eval(const ClassificationStudy& study, ModelKind kind,
                         std::uint64_t seed);

/// True when SPMVML_FAST=1 — benches then shrink model effort.
bool fast();

}  // namespace spmvml::bench
