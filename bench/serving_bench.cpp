// Perf gate for the online serving subsystem (DESIGN.md §5f): trains a
// classifier + per-format regressors in-process, stands up a Service,
// and drives it two ways:
//
//   closed loop — 4 synchronous clients hammer the service while the
//   main thread hot-swaps the model registry mid-run; measures
//   throughput, p50/p95/p99 latency, and that versions stay monotonic.
//
//   open loop — requests submitted at a fixed offered rate regardless
//   of completions, the standard way to expose queueing latency that a
//   closed loop hides; admission-control rejections are counted, not
//   errors.
//
// The bench also asserts the serving contract: batched responses are
// byte-identical to one-shot library calls on the same matrix + model
// (same Format pick, bitwise-equal predicted times). Results land in
// BENCH_serving.json.
//
// --chaos switches to the robustness gate (DESIGN.md §5h): a scripted
// chaos scenario fires fault bursts at the feature and inference stages
// mid-run while hot swaps race injected mid-swap faults. Gates: zero
// invalid selections, failed-request rate ≤ 1% outside the injected
// windows, throughput back to ≥ 90% of steady state within 2 s of each
// burst, and every faulted swap rolled back with the version sequence
// still monotonic. Results land in BENCH_robustness.json.
//
// --drift appends the online-learning scenario (DESIGN.md §5k): a
// service with --learn on serves a Table-I-like regime, traffic then
// shifts to a DLMC-like regime (20-40x the nnz), and the gates assert
// the loop closed — drift tripped, the trainer retrained from replay,
// a validated candidate was published through the journaled swap path,
// and windowed selection accuracy recovered to ≥ 90% of pre-shift with
// zero invalid selections. The section lands inside BENCH_serving.json.
//
//   ./build/bench/serving_bench [--smoke] [--chaos] [--drift]
//                               [--out file.json]
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/chaos/chaos.hpp"
#include "common/env.hpp"
#include "common/json_writer.hpp"
#include "common/obs/trace.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/format_selector.hpp"
#include "core/perf_model.hpp"
#include "features/features.hpp"
#include "learn/trainer.hpp"
#include "serve/model_registry.hpp"
#include "serve/request.hpp"
#include "serve/scorecard.hpp"
#include "serve/service.hpp"
#include "sparse/mmio.hpp"
#include "sparse/spmv.hpp"
#include "synth/corpus.hpp"
#include "synth/generators.hpp"

using namespace spmvml;

namespace {

struct BenchConfig {
  bool smoke = false;
  bool chaos = false;
  /// --drift: append the online-learning drift scenario (DESIGN.md §5k)
  /// — a mid-run workload shift the background trainer must detect and
  /// retrain through, gated on scorecard-accuracy recovery, at least one
  /// journal-consistent trainer-initiated swap, and zero invalid
  /// selections.
  bool drift = false;
  /// Hard perf gates on the open loop (0 = not enforced): fail the run
  /// when achieved throughput drops below --min-rps or cache-warm p99
  /// exceeds --max-p99-ms. CI's perf-smoke job sets both.
  double min_rps = 0.0;
  double max_p99_ms = 0.0;
  std::string out_path;    // default depends on mode
  /// Chrome trace of the open-loop + scorecard phases (non-chaos mode).
  /// The open loop runs with telemetry ON — tracing active and 1 in 100
  /// requests tagged with id'd spans — so the --min-rps/--max-p99-ms
  /// gates prove sampled tracing does not perturb serving.
  std::string trace_out = "BENCH_serving_trace.json";
  int trace_sample() const { return 100; }  // 1% of open-loop requests
  int scorecard_passes() const { return 2; }
  int corpus_size() const { return smoke ? 32 : 48; }
  int matrices() const { return smoke ? 4 : 8; }
  int clients() const { return 4; }
  int requests_per_client() const { return smoke ? 40 : 150; }
  int swaps() const { return smoke ? 4 : 8; }
  int open_requests() const { return smoke ? 200 : 800; }
  double open_rate_rps() const { return smoke ? 1000.0 : 400.0; }
  /// Open-loop admission target: shed instead of queueing unboundedly
  /// when the offered rate outruns the service (the honest 'rejected').
  double admission_target_ms() const { return 150.0; }
  // Drift-mode shape: traffic passes over each regime's matrix set.
  int drift_passes_pre() const { return 8; }    // pre-shift (baseline)
  int drift_passes_shift() const { return 10; } // post-shift (trainer reacts)
  int drift_passes_final() const { return 5; }  // recovery measurement
  index_t drift_post_rows() const { return smoke ? 1600 : 2400; }
  double drift_post_mu() const { return smoke ? 28.0 : 36.0; }
  // Chaos-mode shape: paced open-loop traffic with two scripted bursts.
  int chaos_requests() const { return smoke ? 300 : 1000; }
  double chaos_rate_rps() const { return smoke ? 150.0 : 250.0; }
  double burst1_start_s() const { return smoke ? 0.6 : 1.0; }
  double burst1_end_s() const { return smoke ? 0.9 : 1.5; }
  double burst2_start_s() const { return smoke ? 1.2 : 2.0; }
  double burst2_end_s() const { return smoke ? 1.5 : 2.5; }
};

struct Percentiles {
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

// Nearest-rank percentile over a copy (the caller keeps its order).
Percentiles percentiles_ms(std::vector<double> v) {
  Percentiles p;
  if (v.empty()) return p;
  std::sort(v.begin(), v.end());
  const auto at = [&v](double pct) {
    const auto n = static_cast<double>(v.size());
    auto rank = static_cast<std::size_t>(pct / 100.0 * n);
    if (rank > 0) --rank;
    return v[std::min(rank, v.size() - 1)];
  };
  p.p50 = at(50.0);
  p.p95 = at(95.0);
  p.p99 = at(99.0);
  return p;
}

serve::Request make_request(const std::string& id, serve::RequestMode mode,
                            const std::string& matrix_path) {
  serve::Request req;
  req.id = id;
  req.mode = mode;
  req.matrix_path = matrix_path;
  return req;
}

void write_percentiles(JsonWriter& json, const Percentiles& p) {
  json.kv("p50_ms", p.p50);
  json.kv("p95_ms", p.p95);
  json.kv("p99_ms", p.p99);
}

// ---------------------------------------------------------------------------
// Chaos mode: scripted fault bursts against the hardened request path.

/// One completed request, stamped with its completion time relative to
/// the traffic start. Slots are preallocated; each callback writes its
/// own slot, so no lock is needed on the hot path.
struct ChaosEntry {
  serve::Response rsp;
  double t_s = 0.0;
  std::atomic<bool> done{false};
};

int run_chaos(const BenchConfig& cfg,
              const std::shared_ptr<FormatSelector>& selector_a,
              const std::shared_ptr<FormatSelector>& selector_b,
              const std::shared_ptr<PerfModel>& perf,
              const std::vector<std::string>& paths, double train_s) {
  const double w1s = cfg.burst1_start_s(), w1e = cfg.burst1_end_s();
  const double w2s = cfg.burst2_start_s(), w2e = cfg.burst2_end_s();
  // Breaker cooldown (100ms) plus slack: failures this soon after a
  // burst are still the injected fault's echo, not steady-state ones.
  const double kMarginS = 1.0;
  const double kRecoveryBudgetS = 2.0;
  const double kBucketS = 0.1;

  const std::string scenario_text =
      "seed 20180807\n"
      "rule site=cache_lookup kind=latency rate=0.05 latency_ms=0.2\n"
      "rule site=feature_extract kind=error rate=0.8 start_s=" +
      std::to_string(w1s) + " end_s=" + std::to_string(w1e) +
      "\n"
      "rule site=inference kind=corrupt rate=0.6 start_s=" +
      std::to_string(w2s) + " end_s=" + std::to_string(w2e) +
      "\n"
      "rule site=inference kind=latency rate=0.2 latency_ms=2 start_s=" +
      std::to_string(w2s) + " end_s=" + std::to_string(w2e) +
      "\n"
      "rule site=materialize kind=error rate=0.5 start_s=" +
      std::to_string(w2s) + " end_s=" + std::to_string(w2e) +
      "\n"
      "rule site=registry_swap kind=error rate=0.5\n";
  auto engine = std::make_shared<chaos::Engine>(
      chaos::Scenario::parse_string(scenario_text));
  chaos::set_global(engine);

  serve::ModelRegistry registry;
  registry.install(selector_a, perf);

  serve::ServiceConfig svc_cfg;
  svc_cfg.threads = 4;
  svc_cfg.max_batch = 16;
  svc_cfg.max_delay_ms = 0.5;
  svc_cfg.queue_capacity = 1024;
  svc_cfg.cache_capacity = 0;  // every request extracts: faults bite
  svc_cfg.admission_target_ms = cfg.admission_target_ms();

  const int n = cfg.chaos_requests();
  std::vector<ChaosEntry> entries(static_cast<std::size_t>(n));
  std::uint64_t swap_attempts = 0, swap_ok = 0, swap_rollbacks = 0;
  const std::uint64_t version_before_traffic = registry.version();

  std::printf("== chaos: %d requests at %.0f req/s, bursts [%.1f,%.1f) and "
              "[%.1f,%.1f) s ==\n",
              n, cfg.chaos_rate_rps(), w1s, w1e, w2s, w2e);
  {
    serve::Service service(svc_cfg, registry);
    constexpr serve::RequestMode kModes[] = {serve::RequestMode::kSelect,
                                             serve::RequestMode::kIndirect,
                                             serve::RequestMode::kPredict};
    const auto interval = std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(1.0 / cfg.chaos_rate_rps()));
    engine->start();  // windows line up with the request timeline
    const auto start = std::chrono::steady_clock::now();
    std::atomic<bool> traffic_done{false};

    // Hot swaps race the injected registry_swap faults throughout.
    std::thread swapper([&] {
      int s = 0;
      while (!traffic_done.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        ++swap_attempts;
        try {
          registry.install(s % 2 == 0 ? selector_b : selector_a, perf);
          ++swap_ok;
        } catch (const Error&) {
          ++swap_rollbacks;  // previous bundle stayed live
        }
        ++s;
      }
    });

    for (int k = 0; k < n; ++k) {
      std::this_thread::sleep_until(start + k * interval);
      serve::Request req = make_request(
          "x" + std::to_string(k), kModes[k % 3],
          paths[static_cast<std::size_t>(k) % paths.size()]);
      if (req.mode != serve::RequestMode::kPredict && k % 10 == 0)
        req.materialize = true;
      ChaosEntry* slot = &entries[static_cast<std::size_t>(k)];
      service.submit(std::move(req), [slot, start](const serve::Response& r) {
        slot->rsp = r;
        slot->t_s = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
        slot->done.store(true, std::memory_order_release);
      });
    }
    service.shutdown();  // drains: every slot is filled after this
    traffic_done.store(true);
    swapper.join();
  }
  chaos::set_global(nullptr);

  // --- Analysis. ---
  const auto in_burst_or_echo = [&](double t) {
    return (t >= w1s && t < w1e + kMarginS) || (t >= w2s && t < w2e + kMarginS);
  };
  std::uint64_t served = 0, failed_total = 0, failed_outside = 0,
                outside_total = 0, rejected = 0, degraded = 0, invalid = 0;
  std::vector<double> ok_lat;
  double last_t = 0.0;
  for (const auto& e : entries) {
    if (!e.done.load(std::memory_order_acquire)) continue;  // never happens
    last_t = std::max(last_t, e.t_s);
    if (e.rsp.ok) {
      ++served;
      ok_lat.push_back(e.rsp.latency_ms);
      if (e.rsp.degraded) ++degraded;
      if (e.rsp.mode != serve::RequestMode::kPredict) {
        const int f = static_cast<int>(e.rsp.format);
        if (f < 0 || f >= kNumFormats) ++invalid;
      }
    } else if (e.rsp.error.rfind("rejected", 0) == 0) {
      ++rejected;
    } else {
      ++failed_total;
      if (!in_burst_or_echo(e.t_s)) ++failed_outside;
    }
    if (!in_burst_or_echo(e.t_s)) ++outside_total;
  }
  const double fail_rate_outside =
      outside_total > 0
          ? static_cast<double>(failed_outside) / static_cast<double>(outside_total)
          : 0.0;

  // Completion-rate buckets for the recovery gate.
  std::vector<double> buckets(
      static_cast<std::size_t>(last_t / kBucketS) + 1, 0.0);
  for (const auto& e : entries)
    buckets[static_cast<std::size_t>(e.t_s / kBucketS)] += 1.0;
  double steady = 0.0;
  {
    // Steady state: mean bucket rate after warm-up, before the first burst.
    int count = 0;
    for (std::size_t b = 2; (static_cast<double>(b) + 1.0) * kBucketS <= w1s;
         ++b) {
      steady += buckets[b];
      ++count;
    }
    steady = count > 0 ? steady / count : 0.0;
  }
  const auto recovery_s = [&](double burst_end) {
    for (std::size_t b = static_cast<std::size_t>(burst_end / kBucketS);
         b < buckets.size(); ++b)
      if (buckets[b] >= 0.9 * steady)
        return static_cast<double>(b) * kBucketS - burst_end;
    return 1e9;  // never recovered
  };
  const double rec1_s = std::max(0.0, recovery_s(w1e));
  const double rec2_s = std::max(0.0, recovery_s(w2e));

  // Swap-safety gate: every faulted swap rolled back (live version only
  // ever moved by successful installs) and the journal agrees.
  const auto history = registry.history();
  std::uint64_t installs_journaled = 0, rollbacks_journaled = 0;
  bool journal_monotonic = true;
  std::uint64_t prev_version = 0;
  for (const auto& ev : history) {
    if (ev.action == "install") {
      ++installs_journaled;
      if (ev.version <= prev_version) journal_monotonic = false;
      prev_version = ev.version;
    } else {
      ++rollbacks_journaled;
      if (ev.version != 0) journal_monotonic = false;
    }
  }
  const bool swaps_safe =
      journal_monotonic && rollbacks_journaled == swap_rollbacks &&
      registry.version() == version_before_traffic + swap_ok &&
      installs_journaled == version_before_traffic + swap_ok;

  const Percentiles lat_p = percentiles_ms(ok_lat);
  const bool gate_invalid = invalid == 0;
  const bool gate_fail_rate = fail_rate_outside <= 0.01;
  const bool gate_recovery =
      rec1_s <= kRecoveryBudgetS && rec2_s <= kRecoveryBudgetS;
  const bool pass = gate_invalid && gate_fail_rate && gate_recovery &&
                    swaps_safe && served > 0;

  std::printf("  served %llu (degraded %llu), failed %llu (outside windows "
              "%llu = %.2f%%), rejected %llu, invalid %llu\n",
              static_cast<unsigned long long>(served),
              static_cast<unsigned long long>(degraded),
              static_cast<unsigned long long>(failed_total),
              static_cast<unsigned long long>(failed_outside),
              fail_rate_outside * 100.0,
              static_cast<unsigned long long>(rejected),
              static_cast<unsigned long long>(invalid));
  std::printf("  steady %.0f req/s, recovery %.2f s / %.2f s after bursts\n",
              steady / kBucketS, rec1_s, rec2_s);
  std::printf("  swaps: %llu attempts, %llu installed, %llu rolled back, "
              "final version %llu, safe: %s\n",
              static_cast<unsigned long long>(swap_attempts),
              static_cast<unsigned long long>(swap_ok),
              static_cast<unsigned long long>(swap_rollbacks),
              static_cast<unsigned long long>(registry.version()),
              swaps_safe ? "yes" : "NO");

  std::ofstream out(cfg.out_path);
  JsonWriter json(out);
  json.begin_object();
  json.key("config");
  json.begin_object();
  json.kv("smoke", cfg.smoke);
  json.kv("requests", n);
  json.kv("offered_rps", cfg.chaos_rate_rps());
  json.kv("admission_target_ms", svc_cfg.admission_target_ms);
  json.kv("burst1_s", w1s);
  json.kv("burst2_s", w2s);
  json.kv("train_s", train_s);
  json.end_object();
  json.key("results");
  json.begin_object();
  json.kv("served", served);
  json.kv("degraded", degraded);
  json.kv("failed", failed_total);
  json.kv("failed_outside_windows", failed_outside);
  json.kv("fail_rate_outside_windows", fail_rate_outside);
  json.kv("rejected", rejected);
  json.kv("invalid_selections", invalid);
  json.kv("steady_rps", steady / kBucketS);
  json.kv("recovery_after_burst1_s", rec1_s);
  json.kv("recovery_after_burst2_s", rec2_s);
  write_percentiles(json, lat_p);
  json.end_object();
  json.key("swaps");
  json.begin_object();
  json.kv("attempts", swap_attempts);
  json.kv("installed", swap_ok);
  json.kv("rolled_back", swap_rollbacks);
  json.kv("final_version", registry.version());
  json.kv("journal_monotonic", journal_monotonic);
  json.kv("safe", swaps_safe);
  json.end_object();
  json.key("gates");
  json.begin_object();
  json.kv("zero_invalid_selections", gate_invalid);
  json.kv("fail_rate_outside_windows_le_1pct", gate_fail_rate);
  json.kv("recovery_within_2s", gate_recovery);
  json.kv("swaps_safe", swaps_safe);
  json.kv("pass", pass);
  json.end_object();
  json.end_object();
  out << '\n';
  std::printf("wrote %s\n", cfg.out_path.c_str());
  return pass ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Drift mode (--drift): mid-run workload shift + the online learning loop.
//
// The live bundle is fitted on *measured* SpMV data from the pre-shift
// regime only (small Table-I-like structured matrices), so it is honest
// about that regime and wrong about the one traffic shifts to
// (DLMC-like: much larger, denser-row synthetics — a ~20-40x nnz jump a
// tree regressor prices at its last pre-shift leaf). The service runs
// with --learn semantics on; the gates assert the loop actually closed:
// drift tripped, the trainer retrained from replay, validation published
// the candidate through the journaled swap path, and the scorecard's
// windowed signals recovered.

/// Scored-entry aggregate over one slice of the scorecard stream
/// (probes excluded, like the serving gauges).
struct DriftAgg {
  std::uint64_t scored = 0, hits = 0;
  double rel_sum = 0.0;
  std::uint64_t rel_n = 0;
  void add(const serve::ScorecardEntry& e) {
    if (e.probe) return;
    ++scored;
    if (e.chosen == e.predicted_best) ++hits;
    if (e.predicted_gflops > 0.0 && e.measured_gflops > 0.0) {
      rel_sum += std::abs(e.predicted_gflops - e.measured_gflops) /
                 e.measured_gflops;
      ++rel_n;
    }
  }
  double accuracy() const {
    return scored > 0 ? static_cast<double>(hits) / static_cast<double>(scored)
                      : -1.0;
  }
  double rme() const { return rel_n > 0 ? rel_sum / static_cast<double>(rel_n)
                                        : -1.0; }
};

struct DriftPassStat {
  double accuracy = -1.0;
  double rme = -1.0;
  std::uint64_t swaps = 0;  // trainer swaps completed by end of this pass
};

/// Windowed RME level that separates a calibrated bundle from drifted
/// extrapolation. Shared by the DriftDetector threshold and the final
/// recovery gate: pre-shift noise floor sits around 1.5-3 (the live
/// bundle is fitted on warm best-of-3 timings while the service
/// measures single colder runs; sanitizer instrumentation widens this
/// further), post-shift extrapolation error is ~30-60.
constexpr double kDriftRmeThreshold = 5.0;

struct DriftResult {
  bool ran = false;
  double pre_accuracy = -1.0, pre_rme = -1.0;
  double final_accuracy = -1.0, final_rme = -1.0;
  int first_swap_pass = -1;  // post-shift pass index; -1 = never
  std::vector<DriftPassStat> timeline;
  learn::OnlineTrainer::Stats trainer;
  std::uint64_t invalid = 0, failed = 0;
  std::uint64_t journal_installs = 0, journal_other = 0;
  bool journal_monotonic = false;
  std::uint64_t final_version = 0;
  bool gate_recovered = false, gate_swap = false, gate_clean = false,
       gate_rme = false;
  bool pass = false;
};

/// One regime matrix with its measured per-format GFLOPS (best-of-3
/// timed SpMV per format) — the ground truth the live bundle trains on.
struct MeasuredMatrix {
  Csr<double> csr;
  FeatureVector features;
  std::array<double, kNumFormats> gflops{};
};

MeasuredMatrix measure_matrix(const GenSpec& spec) {
  MeasuredMatrix m{generate(spec), {}, {}};
  m.features = extract_features(m.csr);
  std::vector<double> x(static_cast<std::size_t>(m.csr.cols()), 1.0);
  std::vector<double> y(static_cast<std::size_t>(m.csr.rows()), 0.0);
  const double flops = 2.0 * static_cast<double>(m.csr.nnz());
  for (const Format f : kAllFormats) {
    try {
      const auto built = AnyMatrix<double>::build(f, m.csr);
      double best_s = 1e30;
      for (int rep = 0; rep < 3; ++rep) {
        WallTimer t;
        built.spmv(x, y);
        best_s = std::min(best_s, std::max(t.seconds(), 1e-9));
      }
      m.gflops[static_cast<std::size_t>(f)] = flops / best_s / 1e9;
    } catch (const Error&) {
      // Infeasible conversion: the format simply goes unmeasured.
    }
  }
  return m;
}

DriftResult run_drift_phase(const BenchConfig& cfg) {
  DriftResult res;
  res.ran = true;
  const std::uint64_t lseed = root_seed();
  const double holdout_fraction = 0.35;

  // Mirror of OnlineTrainer's deterministic holdout split, so the bench
  // can generate matrix sets that land a known number of samples on each
  // side — the validation comparison is then guaranteed to see holdout
  // samples from both regimes, whatever SPMVML_SEED is.
  const auto in_holdout = [&](const FeatureVector& f) {
    const std::uint64_t h =
        hash_combine(lseed, serve::features_fingerprint(f.values));
    return static_cast<double>(h >> 11) * 0x1.0p-53 < holdout_fraction;
  };
  const auto build_regime = [&](int want_fit, int want_holdout,
                                auto&& make_spec) {
    std::vector<MeasuredMatrix> out;
    int fit = 0, holdout = 0;
    for (std::uint64_t s = 0;
         (fit < want_fit || holdout < want_holdout) && s < 64; ++s) {
      MeasuredMatrix m = measure_matrix(make_spec(s));
      const bool h = in_holdout(m.features);
      if (h ? holdout >= want_holdout : fit >= want_fit) continue;
      (h ? holdout : fit) += 1;
      out.push_back(std::move(m));
    }
    return out;
  };

  // Pre-shift regime: small structured matrices (Table-I-like scale).
  // 8 fit + 4 holdout fingerprints per regime: enough rows for the
  // trainer's per-format regressors to generalize within a regime, and
  // enough holdout samples that one noisy pick cannot dominate the
  // validation means.
  const auto pre = build_regime(8, 4, [](std::uint64_t s) {
    GenSpec spec;
    spec.family = s % 3 == 0   ? MatrixFamily::kBanded
                  : s % 3 == 1 ? MatrixFamily::kStencil
                               : MatrixFamily::kUniformRandom;
    spec.rows = spec.cols = 320 + 48 * static_cast<index_t>(s % 5);
    spec.row_mu = 6.0;
    spec.row_cv = 0.3;
    spec.band_frac = 0.05;
    spec.seed = 31000 + s;
    return spec;
  });
  // Post-shift regime: DLMC-like — much larger, denser rows, block or
  // uniform structure. The nnz jump is what a stale per-format tree
  // cannot price (it extrapolates its last pre-shift leaf).
  const auto post = build_regime(8, 4, [&](std::uint64_t s) {
    GenSpec spec;
    spec.family = s % 2 == 0 ? MatrixFamily::kUniformRandom
                             : MatrixFamily::kBlockRandom;
    spec.rows = spec.cols = cfg.drift_post_rows();
    spec.row_mu = cfg.drift_post_mu();
    spec.row_cv = 0.15;
    spec.block_size = 16;
    spec.seed = 67000 + s;
    return spec;
  });
  if (pre.size() < 12 || post.size() < 12) {
    std::printf("== drift: regime generation failed (%zu pre, %zu post) ==\n",
                pre.size(), post.size());
    return res;
  }

  // Live bundle fitted on measured pre-shift samples only: classifier on
  // argmax-measured-GFLOPS labels, per-format regressors on measured
  // log10-seconds — exactly the shape the trainer will later refit from
  // replay, so pre-shift RME starts near zero.
  auto selector = std::make_shared<FormatSelector>(
      ModelKind::kDecisionTree, FeatureSet::kSet12, kAllFormats, /*fast=*/true);
  std::shared_ptr<const PerfModel> live_perf;
  {
    ml::Matrix sx;
    std::vector<int> sy;
    std::vector<Format> perf_formats;
    std::vector<ml::Matrix> px(kNumFormats);
    std::vector<std::vector<double>> py(kNumFormats);
    for (const auto& m : pre) {
      int best = -1;
      for (int f = 0; f < kNumFormats; ++f)
        if (m.gflops[static_cast<std::size_t>(f)] > 0.0 &&
            (best < 0 || m.gflops[static_cast<std::size_t>(f)] >
                             m.gflops[static_cast<std::size_t>(best)]))
          best = f;
      if (best < 0) continue;
      sx.push_back(m.features.select(FeatureSet::kSet12));
      sy.push_back(best);  // candidates == kAllFormats in enum order
      const double nnz = m.features[kNnzTot];
      for (int f = 0; f < kNumFormats; ++f) {
        const double g = m.gflops[static_cast<std::size_t>(f)];
        if (g <= 0.0 || nnz <= 0.0) continue;
        px[static_cast<std::size_t>(f)].push_back(
            m.features.select(FeatureSet::kSet12));
        py[static_cast<std::size_t>(f)].push_back(
            seconds_to_regression_target(2.0 * nnz / (g * 1e9)));
      }
    }
    selector->fit(sx, sy);
    std::vector<ml::Matrix> fx;
    std::vector<std::vector<double>> fy;
    for (int f = 0; f < kNumFormats; ++f) {
      if (px[static_cast<std::size_t>(f)].empty()) continue;
      perf_formats.push_back(static_cast<Format>(f));
      fx.push_back(std::move(px[static_cast<std::size_t>(f)]));
      fy.push_back(std::move(py[static_cast<std::size_t>(f)]));
    }
    PerfModel perf(RegressorKind::kDecisionTree, FeatureSet::kSet12,
                   perf_formats, /*fast=*/true);
    perf.fit_samples(fx, fy);
    live_perf = std::make_shared<const PerfModel>(std::move(perf));
  }

  serve::ModelRegistry registry;
  registry.install(selector, live_perf);

  // Matrix Market files the requests will name.
  std::vector<std::string> pre_paths, post_paths;
  for (std::size_t i = 0; i < pre.size(); ++i) {
    pre_paths.push_back("drift_pre_" + std::to_string(i) + ".tmp.mtx");
    write_matrix_market(pre_paths.back(), pre[i].csr);
  }
  for (std::size_t i = 0; i < post.size(); ++i) {
    post_paths.push_back("drift_post_" + std::to_string(i) + ".tmp.mtx");
    write_matrix_market(post_paths.back(), post[i].csr);
  }

  serve::ServiceConfig dcfg;
  dcfg.threads = 2;
  dcfg.max_batch = 8;
  dcfg.max_delay_ms = 0.2;
  dcfg.cache_capacity = 64;
  dcfg.learn.enabled = true;
  dcfg.learn.replay_capacity = 256;
  dcfg.learn.poll_every_s = 0.01;
  // Drift-triggered retrains plus a periodic retry: a discarded
  // candidate (validation is honest — it can lose) gets another shot as
  // replay accumulates more of the new regime.
  dcfg.learn.retrain_every_s = 0.25;
  // Thinner than one full regime: no retrain can fire on pre data
  // alone, so the first candidate already sees the shift.
  dcfg.learn.min_samples = 16;
  dcfg.learn.min_labeled = 6;
  dcfg.learn.min_retrain_gap_s = 0.05;
  dcfg.learn.holdout_fraction = holdout_fraction;
  dcfg.learn.seed = lseed;
  dcfg.learn.drift.window = 12;
  // See kDriftRmeThreshold: above the pre-shift noise floor, far below
  // the post-shift extrapolation error — drift trips on the regime
  // change only.
  dcfg.learn.drift.rme_threshold = kDriftRmeThreshold;
  dcfg.learn.drift.accuracy_floor = 0.4;
  dcfg.learn.drift.trip_after = 2;
  dcfg.learn.drift.clear_after = 2;

  std::printf("== drift: %d pre passes x %zu matrices -> shift -> %d+%d post "
              "passes x %zu matrices, learn on ==\n",
              cfg.drift_passes_pre(), pre_paths.size(),
              cfg.drift_passes_shift(), cfg.drift_passes_final(),
              post_paths.size());
  {
    serve::Service service(dcfg, registry);
    std::uint64_t cursor = 0;
    const auto run_pass = [&](const std::vector<std::string>& paths, int pass,
                              DriftAgg& agg) {
      for (std::size_t m = 0; m < paths.size(); ++m) {
        serve::Request req = make_request(
            "d" + std::to_string(pass) + "-" + std::to_string(m),
            (pass + static_cast<int>(m)) % 2 == 0
                ? serve::RequestMode::kSelect
                : serve::RequestMode::kIndirect,
            paths[m]);
        req.materialize = true;
        const auto rsp = service.call(std::move(req));
        if (!rsp.ok) {
          ++res.failed;
        } else {
          const int f = static_cast<int>(rsp.format);
          if (f < 0 || f >= kNumFormats) ++res.invalid;
        }
      }
      // Drain what this pass appended (the drain_since cursor contract:
      // a steady poller pays only for new entries).
      const auto drained = service.scorecard().drain_since(cursor);
      cursor = drained.next_seq;
      for (const auto& e : drained.entries) agg.add(e);
    };

    DriftAgg pre_agg;
    for (int p = 0; p < cfg.drift_passes_pre(); ++p)
      run_pass(pre_paths, p, pre_agg);
    res.pre_accuracy = pre_agg.accuracy();
    res.pre_rme = pre_agg.rme();

    // Shift: same service, same live bundle, new regime. The trainer
    // sees it through the scorecard only. Passes are paced so retrains
    // interleave with data accumulation instead of all firing on the
    // thin first sightings of the new regime (the ingest cache makes
    // un-paced passes far faster than any real traffic).
    for (int p = 0; p < cfg.drift_passes_shift(); ++p) {
      DriftAgg agg;
      run_pass(post_paths, 1000 + p, agg);
      const auto ls = service.learner()->stats();
      if (res.first_swap_pass < 0 && ls.swaps > 0)
        res.first_swap_pass = p;
      res.timeline.push_back({agg.accuracy(), agg.rme(), ls.swaps});
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
    // Settle: the trainer is asynchronous. Wait (bounded) for two
    // completed retrain attempts — the first may have been in flight
    // when the shift traffic ended; the second provably trained on the
    // full shift data. Validation then guarantees the live bundle
    // entering the recovery phase is the best candidate seen: a worse
    // one was discarded, a better one was published.
    const auto attempts = [&] {
      const auto ls = service.learner()->stats();
      return ls.swaps + ls.discards + ls.aborted;
    };
    const std::uint64_t settled_from = attempts();
    for (int spin = 0; spin < 250 && attempts() < settled_from + 2; ++spin)
      std::this_thread::sleep_for(std::chrono::milliseconds(20));

    DriftAgg final_agg;
    for (int p = 0; p < cfg.drift_passes_final(); ++p) {
      DriftAgg agg;
      run_pass(post_paths, 2000 + p, agg);
      const auto ls = service.learner()->stats();
      if (res.first_swap_pass < 0 && ls.swaps > 0)
        res.first_swap_pass = cfg.drift_passes_shift() + p;
      res.timeline.push_back({agg.accuracy(), agg.rme(), ls.swaps});
      final_agg.scored += agg.scored;
      final_agg.hits += agg.hits;
      final_agg.rel_sum += agg.rel_sum;
      final_agg.rel_n += agg.rel_n;
    }
    res.final_accuracy = final_agg.accuracy();
    res.final_rme = final_agg.rme();
    res.trainer = service.learner()->stats();
    service.shutdown();
  }
  for (const auto& p : pre_paths) std::remove(p.c_str());
  for (const auto& p : post_paths) std::remove(p.c_str());

  // Journal consistency: installs strictly monotonic, every non-install
  // event carries version 0, and the live version equals the install
  // count (the seed install plus each trainer swap).
  const auto history = registry.history();
  res.journal_monotonic = true;
  std::uint64_t prev_version = 0;
  for (const auto& ev : history) {
    if (ev.action == "install") {
      ++res.journal_installs;
      if (ev.version != prev_version + 1) res.journal_monotonic = false;
      prev_version = ev.version;
    } else {
      ++res.journal_other;
      if (ev.version != 0) res.journal_monotonic = false;
    }
  }
  res.final_version = registry.version();

  res.gate_recovered = res.pre_accuracy > 0.0 && res.final_accuracy >= 0.0 &&
                       res.final_accuracy >= 0.9 * res.pre_accuracy;
  res.gate_swap = res.trainer.swaps >= 1 && res.journal_monotonic &&
                  res.journal_installs == 1 + res.trainer.swaps &&
                  res.final_version == res.journal_installs;
  res.gate_clean = res.invalid == 0 && res.failed == 0;
  // The calibration signal must actually recover: drifted windows price
  // requests orders of magnitude off; the retrained bundle must land
  // back under the drift threshold itself (uninstrumented runs come in
  // around 0.2-0.3; asan/tsan timing noise can reach ~3).
  res.gate_rme = res.final_rme >= 0.0 && res.final_rme < kDriftRmeThreshold;
  res.pass = res.gate_recovered && res.gate_swap && res.gate_clean &&
             res.gate_rme;

  std::printf("  pre accuracy %.2f rme %.3f -> final accuracy %.2f rme %.3f "
              "(first swap at post pass %d)\n",
              res.pre_accuracy, res.pre_rme, res.final_accuracy, res.final_rme,
              res.first_swap_pass);
  std::printf("  trainer: %llu retrains, %llu swaps, %llu discards, %llu "
              "aborted; drift trips %llu; journal installs %llu monotonic: "
              "%s; invalid %llu failed %llu\n",
              static_cast<unsigned long long>(res.trainer.retrains),
              static_cast<unsigned long long>(res.trainer.swaps),
              static_cast<unsigned long long>(res.trainer.discards),
              static_cast<unsigned long long>(res.trainer.aborted),
              static_cast<unsigned long long>(res.trainer.drift.trips),
              static_cast<unsigned long long>(res.journal_installs),
              res.journal_monotonic ? "yes" : "NO",
              static_cast<unsigned long long>(res.invalid),
              static_cast<unsigned long long>(res.failed));
  return res;
}

int main_impl(int argc, char** argv) {
  BenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      cfg.smoke = true;
    } else if (arg == "--chaos") {
      cfg.chaos = true;
    } else if (arg == "--drift") {
      cfg.drift = true;
    } else if (arg == "--out" && i + 1 < argc) {
      cfg.out_path = argv[++i];
    } else if (arg == "--min-rps" && i + 1 < argc) {
      cfg.min_rps = std::atof(argv[++i]);
    } else if (arg == "--max-p99-ms" && i + 1 < argc) {
      cfg.max_p99_ms = std::atof(argv[++i]);
    } else if (arg == "--trace-out" && i + 1 < argc) {
      cfg.trace_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: serving_bench [--smoke] [--chaos] [--drift] "
                   "[--min-rps F] [--max-p99-ms F] [--out file] "
                   "[--trace-out file]\n");
      return 2;
    }
  }
  if (cfg.out_path.empty())
    cfg.out_path = cfg.chaos ? "BENCH_robustness.json" : "BENCH_serving.json";

  // --- Train two model bundles: one live, one to hot-swap in. ---
  std::printf("== train: %d-matrix corpus, MLP selector + tree regressors ==\n",
              cfg.corpus_size());
  WallTimer timer;
  const auto corpus =
      collect_corpus(make_small_plan(cfg.corpus_size(), 2018));
  auto selector_a = std::make_shared<FormatSelector>(
      ModelKind::kMlp, FeatureSet::kSet12, kAllFormats, /*fast=*/true);
  selector_a->fit(corpus, 0, Precision::kDouble);
  auto selector_b = std::make_shared<FormatSelector>(
      ModelKind::kDecisionTree, FeatureSet::kSet12, kAllFormats,
      /*fast=*/true);
  selector_b->fit(corpus, 0, Precision::kDouble);
  auto perf = std::make_shared<PerfModel>(RegressorKind::kDecisionTree,
                                          FeatureSet::kSet12, kAllFormats,
                                          /*fast=*/true);
  perf->fit(corpus, 0, Precision::kDouble);
  const double train_s = timer.seconds();
  std::printf("  trained both bundles in %.2f s\n", train_s);

  serve::ModelRegistry registry;
  registry.install(selector_a, perf);

  // --- Matrix Market inputs the clients will name in requests. ---
  const auto file_plan = make_small_plan(cfg.matrices(), 777);
  std::vector<std::string> paths;
  for (int i = 0; i < cfg.matrices(); ++i) {
    const std::string path =
        "serving_bench_m" + std::to_string(i) + ".tmp.mtx";
    write_matrix_market(path, generate(file_plan.specs[static_cast<std::size_t>(i)]));
    paths.push_back(path);
  }

  if (cfg.chaos) {
    const int rc = run_chaos(cfg, selector_a, selector_b, perf, paths, train_s);
    for (const auto& path : paths) std::remove(path.c_str());
    return rc;
  }

  serve::ServiceConfig svc_cfg;
  svc_cfg.threads = 4;
  svc_cfg.max_batch = 16;
  svc_cfg.max_delay_ms = 0.5;
  svc_cfg.queue_capacity = 1024;
  svc_cfg.cache_capacity = 64;
  // Fast-path ingest: sharded dispatch plus the materialized-matrix
  // cache (256 MB default) — the configuration the throughput gates
  // below are tuned for.
  svc_cfg.dispatch_shards = 4;

  constexpr serve::RequestMode kModes[] = {serve::RequestMode::kSelect,
                                           serve::RequestMode::kIndirect,
                                           serve::RequestMode::kPredict};

  // --- Contract check: batched serving == one-shot library calls. ---
  // The service reads the matrix back from the file, so the reference
  // computation does too — both sides see the identical Csr.
  bool identical = true;
  {
    serve::Service service(svc_cfg, registry);
    for (const auto& path : paths) {
      const auto matrix = read_matrix_market(path);
      const auto features = extract_features(matrix);
      const Format expect = selector_a->select(features);
      const auto sel =
          service.call(make_request("chk-sel", serve::RequestMode::kSelect,
                                    path));
      if (!sel.ok || sel.format != expect) identical = false;
      const auto prd =
          service.call(make_request("chk-prd", serve::RequestMode::kPredict,
                                    path));
      if (!prd.ok || prd.predicted_us.size() != perf->formats().size())
        identical = false;
      for (std::size_t k = 0; identical && k < prd.predicted_us.size(); ++k) {
        const auto [f, us] = prd.predicted_us[k];
        if (f != perf->formats()[k] ||
            us != perf->predict_seconds(features, f) * 1e6)
          identical = false;
      }
    }
  }
  std::printf("== contract: batched == one-shot: %s ==\n",
              identical ? "yes" : "NO");

  // --- Closed loop: 4 clients, hot swaps mid-run. ---
  std::printf("== closed loop: %d clients x %d requests, %d hot swaps ==\n",
              cfg.clients(), cfg.requests_per_client(), cfg.swaps());
  std::vector<double> closed_lat;
  std::uint64_t closed_failed = 0;
  std::uint64_t closed_cache_hits = 0;
  double closed_wall_s = 0.0;
  bool versions_monotonic = true;
  std::uint64_t swaps_done = 0;
  {
    serve::Service service(svc_cfg, registry);
    std::mutex agg_mu;
    std::atomic<bool> done{false};
    timer.reset();
    std::vector<std::thread> clients;
    for (int c = 0; c < cfg.clients(); ++c) {
      clients.emplace_back([&, c] {
        std::vector<double> lat;
        std::uint64_t failed = 0, hits = 0, last_version = 0;
        bool monotonic = true;
        for (int k = 0; k < cfg.requests_per_client(); ++k) {
          const int pick = c * cfg.requests_per_client() + k;
          const auto rsp = service.call(make_request(
              "c" + std::to_string(c) + "-" + std::to_string(k),
              kModes[pick % 3],
              paths[static_cast<std::size_t>(pick) % paths.size()]));
          if (!rsp.ok) ++failed;
          if (rsp.cache_hit) ++hits;
          // A client never sees the model version move backwards.
          if (rsp.ok && rsp.model_version < last_version) monotonic = false;
          if (rsp.ok) last_version = rsp.model_version;
          lat.push_back(rsp.latency_ms);
        }
        std::lock_guard<std::mutex> lock(agg_mu);
        closed_lat.insert(closed_lat.end(), lat.begin(), lat.end());
        closed_failed += failed;
        closed_cache_hits += hits;
        versions_monotonic = versions_monotonic && monotonic;
      });
    }
    std::thread swapper([&] {
      for (int s = 0; s < cfg.swaps() && !done.load(); ++s) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        registry.install(s % 2 == 0 ? selector_b : selector_a, perf);
        ++swaps_done;
      }
    });
    for (auto& t : clients) t.join();
    done.store(true);
    swapper.join();
    closed_wall_s = timer.seconds();
    service.shutdown();
  }
  const auto total_closed =
      static_cast<double>(cfg.clients() * cfg.requests_per_client());
  const double closed_rps = total_closed / closed_wall_s;
  const Percentiles closed_p = percentiles_ms(closed_lat);
  std::printf("  %.0f req in %.2f s = %.0f req/s  (p50 %.2f ms, p95 %.2f ms, "
              "p99 %.2f ms)\n",
              total_closed, closed_wall_s, closed_rps, closed_p.p50,
              closed_p.p95, closed_p.p99);
  std::printf("  failed %llu, cache hits %llu, swaps %llu, versions "
              "monotonic: %s\n",
              static_cast<unsigned long long>(closed_failed),
              static_cast<unsigned long long>(closed_cache_hits),
              static_cast<unsigned long long>(swaps_done),
              versions_monotonic ? "yes" : "NO");

  // --- Open loop: paced offered rate, count rejections separately. ---
  // Admission shedding is on here: with the offered rate outrunning the
  // service, unbounded queueing would report "rejected 0" while p50
  // climbs into seconds. Shedding makes the rejected count honest.
  // Telemetry ON for the rest of the run: Chrome tracing active with 1%
  // of requests carrying id'd per-request spans. The perf gates below
  // apply to this configuration, so passing them proves sampled
  // request-scoped telemetry does not perturb serving.
  if (!cfg.trace_out.empty()) obs::trace_start(cfg.trace_out);
  std::printf("== open loop: %d requests at %.0f req/s offered, admission "
              "target %.0f ms, trace sampling 1/%d ==\n",
              cfg.open_requests(), cfg.open_rate_rps(),
              cfg.admission_target_ms(), cfg.trace_sample());
  std::vector<double> open_lat;
  std::vector<double> shed_wait_ms;  // est. queue age of shed requests
  std::uint64_t open_rejected = 0, open_failed = 0;
  double open_wall_s = 0.0;
  serve::ServiceConfig open_cfg = svc_cfg;
  open_cfg.admission_target_ms = cfg.admission_target_ms();
  {
    serve::Service service(open_cfg, registry);
    std::vector<std::future<serve::Response>> futures;
    futures.reserve(static_cast<std::size_t>(cfg.open_requests()));
    const auto interval = std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(1.0 / cfg.open_rate_rps()));
    timer.reset();
    const auto start = std::chrono::steady_clock::now();
    for (int k = 0; k < cfg.open_requests(); ++k) {
      std::this_thread::sleep_until(start + k * interval);
      serve::Request req = make_request(
          "o" + std::to_string(k), kModes[k % 3],
          paths[static_cast<std::size_t>(k) % paths.size()]);
      req.trace_sampled = (k % cfg.trace_sample()) == 0;
      futures.push_back(service.submit(std::move(req)));
    }
    for (auto& f : futures) {
      const auto rsp = f.get();
      if (rsp.ok) {
        open_lat.push_back(rsp.latency_ms);
      } else if (rsp.error.rfind("rejected", 0) == 0) {
        ++open_rejected;
        if (!rsp.shed.empty()) shed_wait_ms.push_back(rsp.est_wait_ms);
      } else {
        ++open_failed;
      }
    }
    open_wall_s = timer.seconds();
    service.shutdown();
  }
  const double open_rps =
      static_cast<double>(open_lat.size()) / open_wall_s;
  const Percentiles open_p = percentiles_ms(open_lat);
  const Percentiles shed_p = percentiles_ms(shed_wait_ms);
  std::printf("  served %zu (%.0f req/s), rejected %llu, failed %llu  "
              "(p50 %.2f ms, p95 %.2f ms, p99 %.2f ms)\n",
              open_lat.size(), open_rps,
              static_cast<unsigned long long>(open_rejected),
              static_cast<unsigned long long>(open_failed), open_p.p50,
              open_p.p95, open_p.p99);
  if (!shed_wait_ms.empty())
    std::printf("  shed %zu with est queue wait p50 %.1f ms, p95 %.1f ms, "
                "p99 %.1f ms\n",
                shed_wait_ms.size(), shed_p.p50, shed_p.p95, shed_p.p99);

  // --- Scorecard: materialize requests close the predict/measure loop. ---
  // Every materialized conversion runs one timed SpMV and records
  // predicted-vs-measured GFLOPS plus chosen-vs-best regret; the
  // service-side scorecard aggregates them into the accuracy numbers
  // reported below (and gated on: a run must produce records).
  const int scorecard_n = cfg.scorecard_passes() * cfg.matrices();
  std::printf("== scorecard: %d materialize requests over %d matrices ==\n",
              scorecard_n, cfg.matrices());
  serve::Scorecard::Summary score;
  std::uint64_t score_failed = 0;
  {
    serve::Service service(svc_cfg, registry);
    for (int rep = 0; rep < cfg.scorecard_passes(); ++rep) {
      for (std::size_t m = 0; m < paths.size(); ++m) {
        serve::Request req = make_request(
            "sc" + std::to_string(rep) + "-" + std::to_string(m),
            serve::RequestMode::kIndirect, paths[m]);
        req.materialize = true;
        req.trace_sampled = true;  // few requests: trace them all
        const auto rsp = service.call(std::move(req));
        if (!rsp.ok) ++score_failed;
      }
    }
    score = service.scorecard().summary();
    service.shutdown();
  }
  if (!cfg.trace_out.empty()) obs::trace_stop();
  std::printf("  records %llu, selection accuracy %.2f, mean regret %.3f, "
              "predicted-vs-measured RME %.2f, failed %llu\n",
              static_cast<unsigned long long>(score.total), score.accuracy,
              score.mean_regret, score.rme,
              static_cast<unsigned long long>(score_failed));

  for (const auto& path : paths) std::remove(path.c_str());

  // --- Drift scenario (--drift): the online learning loop end to end. ---
  DriftResult drift;
  if (cfg.drift) drift = run_drift_phase(cfg);

  std::ofstream out(cfg.out_path);
  JsonWriter json(out);
  json.begin_object();
  json.key("config");
  json.begin_object();
  json.kv("smoke", cfg.smoke);
  json.kv("threads", svc_cfg.threads);
  json.kv("max_batch", static_cast<std::uint64_t>(svc_cfg.max_batch));
  json.kv("max_delay_ms", svc_cfg.max_delay_ms);
  json.kv("queue_capacity",
          static_cast<std::uint64_t>(svc_cfg.queue_capacity));
  json.kv("matrices", cfg.matrices());
  json.kv("train_s", train_s);
  json.end_object();
  json.kv("batched_matches_one_shot", identical);
  json.key("closed_loop");
  json.begin_object();
  json.kv("clients", cfg.clients());
  json.kv("requests", static_cast<std::uint64_t>(total_closed));
  json.kv("wall_s", closed_wall_s);
  json.kv("throughput_rps", closed_rps);
  write_percentiles(json, closed_p);
  json.kv("failed", closed_failed);
  json.kv("cache_hits", closed_cache_hits);
  json.kv("hot_swaps", swaps_done);
  json.kv("versions_monotonic", versions_monotonic);
  json.end_object();
  json.key("open_loop");
  json.begin_object();
  json.kv("offered_rps", cfg.open_rate_rps());
  json.kv("admission_target_ms", open_cfg.admission_target_ms);
  json.kv("requests", cfg.open_requests());
  json.kv("served", static_cast<std::uint64_t>(open_lat.size()));
  json.kv("rejected", open_rejected);
  json.kv("failed", open_failed);
  json.kv("wall_s", open_wall_s);
  json.kv("achieved_rps", open_rps);
  write_percentiles(json, open_p);
  // Queue age the shed requests were turned away at: how far over
  // budget the queue was when admission said no.
  json.key("shed");
  json.begin_object();
  json.kv("count", static_cast<std::uint64_t>(shed_wait_ms.size()));
  write_percentiles(json, shed_p);
  json.end_object();
  json.end_object();
  json.key("scorecard");
  json.begin_object();
  json.kv("records", score.total);
  json.kv("window", static_cast<std::uint64_t>(score.window));
  json.kv("selection_accuracy", score.accuracy);
  json.kv("mean_regret", score.mean_regret);
  json.kv("predicted_vs_measured_rme", score.rme);
  json.kv("failed", score_failed);
  json.end_object();
  json.kv("trace_sample", cfg.trace_sample());
  if (cfg.drift) {
    json.key("drift");
    json.begin_object();
    json.key("config");
    json.begin_object();
    json.kv("passes_pre", cfg.drift_passes_pre());
    json.kv("passes_shift", cfg.drift_passes_shift());
    json.kv("passes_final", cfg.drift_passes_final());
    json.kv("post_rows", static_cast<std::uint64_t>(cfg.drift_post_rows()));
    json.kv("post_row_mu", cfg.drift_post_mu());
    json.end_object();
    json.key("pre");
    json.begin_object();
    json.kv("selection_accuracy", drift.pre_accuracy);
    json.kv("predicted_vs_measured_rme", drift.pre_rme);
    json.end_object();
    json.key("post_timeline");
    json.begin_array();
    for (const auto& t : drift.timeline) {
      json.begin_object();
      json.kv("selection_accuracy", t.accuracy);
      json.kv("predicted_vs_measured_rme", t.rme);
      json.kv("trainer_swaps", t.swaps);
      json.end_object();
    }
    json.end_array();
    json.key("final");
    json.begin_object();
    json.kv("selection_accuracy", drift.final_accuracy);
    json.kv("predicted_vs_measured_rme", drift.final_rme);
    json.end_object();
    json.kv("first_swap_pass", drift.first_swap_pass);
    json.key("trainer");
    json.begin_object();
    json.kv("retrains", drift.trainer.retrains);
    json.kv("swaps", drift.trainer.swaps);
    json.kv("discards", drift.trainer.discards);
    json.kv("aborted", drift.trainer.aborted);
    json.kv("drift_trips", drift.trainer.drift.trips);
    json.kv("last_published_version", drift.trainer.last_published_version);
    json.kv("last_candidate_regret", drift.trainer.last_candidate_regret);
    json.kv("last_live_regret", drift.trainer.last_live_regret);
    json.kv("last_candidate_rme", drift.trainer.last_candidate_rme);
    json.kv("last_live_rme", drift.trainer.last_live_rme);
    json.end_object();
    json.key("journal");
    json.begin_object();
    json.kv("installs", drift.journal_installs);
    json.kv("other", drift.journal_other);
    json.kv("monotonic", drift.journal_monotonic);
    json.kv("final_version", drift.final_version);
    json.end_object();
    json.kv("invalid_selections", drift.invalid);
    json.kv("failed", drift.failed);
    json.key("gates");
    json.begin_object();
    json.kv("accuracy_recovered", drift.gate_recovered);
    json.kv("trainer_swap_journaled", drift.gate_swap);
    json.kv("zero_invalid_and_failed", drift.gate_clean);
    json.kv("final_rme_bounded", drift.gate_rme);
    json.kv("pass", drift.pass);
    json.end_object();
    json.end_object();
  }
  const bool gate_rps = cfg.min_rps <= 0.0 || open_rps >= cfg.min_rps;
  const bool gate_p99 =
      cfg.max_p99_ms <= 0.0 || open_p.p99 <= cfg.max_p99_ms;
  const bool gate_scorecard = score.total > 0 && score_failed == 0;
  const bool gate_drift = !cfg.drift || drift.pass;
  const bool pass = identical && versions_monotonic && closed_failed == 0 &&
                    open_failed == 0 && gate_rps && gate_p99 &&
                    gate_scorecard && gate_drift;
  json.key("gates");
  json.begin_object();
  json.kv("min_rps", cfg.min_rps);
  json.kv("max_p99_ms", cfg.max_p99_ms);
  json.kv("achieved_rps_ok", gate_rps);
  json.kv("p99_ok", gate_p99);
  json.kv("scorecard_records_ok", gate_scorecard);
  json.kv("drift_ok", gate_drift);
  json.kv("pass", pass);
  json.end_object();
  json.end_object();
  out << '\n';
  std::printf("wrote %s\n", cfg.out_path.c_str());
  if (!gate_rps)
    std::printf("GATE FAIL: achieved %.0f req/s < --min-rps %.0f\n", open_rps,
                cfg.min_rps);
  if (!gate_p99)
    std::printf("GATE FAIL: open-loop p99 %.2f ms > --max-p99-ms %.2f\n",
                open_p.p99, cfg.max_p99_ms);
  if (!gate_scorecard)
    std::printf("GATE FAIL: scorecard records %llu (failed %llu) — "
                "materialize requests produced no accuracy data\n",
                static_cast<unsigned long long>(score.total),
                static_cast<unsigned long long>(score_failed));
  if (!gate_drift)
    std::printf("GATE FAIL: drift scenario (recovered %d swap %d clean %d "
                "rme %d)\n",
                static_cast<int>(drift.gate_recovered),
                static_cast<int>(drift.gate_swap),
                static_cast<int>(drift.gate_clean),
                static_cast<int>(drift.gate_rme));
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return main_impl(argc, argv); }
