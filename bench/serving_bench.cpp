// Perf gate for the online serving subsystem (DESIGN.md §5f): trains a
// classifier + per-format regressors in-process, stands up a Service,
// and drives it two ways:
//
//   closed loop — 4 synchronous clients hammer the service while the
//   main thread hot-swaps the model registry mid-run; measures
//   throughput, p50/p95/p99 latency, and that versions stay monotonic.
//
//   open loop — requests submitted at a fixed offered rate regardless
//   of completions, the standard way to expose queueing latency that a
//   closed loop hides; admission-control rejections are counted, not
//   errors.
//
// The bench also asserts the serving contract: batched responses are
// byte-identical to one-shot library calls on the same matrix + model
// (same Format pick, bitwise-equal predicted times). Results land in
// BENCH_serving.json.
//
//   ./build/bench/serving_bench [--smoke] [--out serving.json]
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json_writer.hpp"
#include "common/timer.hpp"
#include "core/format_selector.hpp"
#include "core/perf_model.hpp"
#include "serve/model_registry.hpp"
#include "serve/request.hpp"
#include "serve/service.hpp"
#include "sparse/mmio.hpp"
#include "synth/corpus.hpp"
#include "synth/generators.hpp"

using namespace spmvml;

namespace {

struct BenchConfig {
  bool smoke = false;
  std::string out_path = "BENCH_serving.json";
  int corpus_size() const { return smoke ? 32 : 48; }
  int matrices() const { return smoke ? 4 : 8; }
  int clients() const { return 4; }
  int requests_per_client() const { return smoke ? 40 : 150; }
  int swaps() const { return smoke ? 4 : 8; }
  int open_requests() const { return smoke ? 200 : 800; }
  double open_rate_rps() const { return smoke ? 1000.0 : 400.0; }
};

struct Percentiles {
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

// Nearest-rank percentile over a copy (the caller keeps its order).
Percentiles percentiles_ms(std::vector<double> v) {
  Percentiles p;
  if (v.empty()) return p;
  std::sort(v.begin(), v.end());
  const auto at = [&v](double pct) {
    const auto n = static_cast<double>(v.size());
    auto rank = static_cast<std::size_t>(pct / 100.0 * n);
    if (rank > 0) --rank;
    return v[std::min(rank, v.size() - 1)];
  };
  p.p50 = at(50.0);
  p.p95 = at(95.0);
  p.p99 = at(99.0);
  return p;
}

serve::Request make_request(const std::string& id, serve::RequestMode mode,
                            const std::string& matrix_path) {
  serve::Request req;
  req.id = id;
  req.mode = mode;
  req.matrix_path = matrix_path;
  return req;
}

void write_percentiles(JsonWriter& json, const Percentiles& p) {
  json.kv("p50_ms", p.p50);
  json.kv("p95_ms", p.p95);
  json.kv("p99_ms", p.p99);
}

int main_impl(int argc, char** argv) {
  BenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      cfg.smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      cfg.out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: serving_bench [--smoke] [--out file]\n");
      return 2;
    }
  }

  // --- Train two model bundles: one live, one to hot-swap in. ---
  std::printf("== train: %d-matrix corpus, MLP selector + tree regressors ==\n",
              cfg.corpus_size());
  WallTimer timer;
  const auto corpus =
      collect_corpus(make_small_plan(cfg.corpus_size(), 2018));
  auto selector_a = std::make_shared<FormatSelector>(
      ModelKind::kMlp, FeatureSet::kSet12, kAllFormats, /*fast=*/true);
  selector_a->fit(corpus, 0, Precision::kDouble);
  auto selector_b = std::make_shared<FormatSelector>(
      ModelKind::kDecisionTree, FeatureSet::kSet12, kAllFormats,
      /*fast=*/true);
  selector_b->fit(corpus, 0, Precision::kDouble);
  auto perf = std::make_shared<PerfModel>(RegressorKind::kDecisionTree,
                                          FeatureSet::kSet12, kAllFormats,
                                          /*fast=*/true);
  perf->fit(corpus, 0, Precision::kDouble);
  const double train_s = timer.seconds();
  std::printf("  trained both bundles in %.2f s\n", train_s);

  serve::ModelRegistry registry;
  registry.install(selector_a, perf);

  // --- Matrix Market inputs the clients will name in requests. ---
  const auto file_plan = make_small_plan(cfg.matrices(), 777);
  std::vector<std::string> paths;
  for (int i = 0; i < cfg.matrices(); ++i) {
    const std::string path =
        "serving_bench_m" + std::to_string(i) + ".tmp.mtx";
    write_matrix_market(path, generate(file_plan.specs[static_cast<std::size_t>(i)]));
    paths.push_back(path);
  }

  serve::ServiceConfig svc_cfg;
  svc_cfg.threads = 4;
  svc_cfg.max_batch = 16;
  svc_cfg.max_delay_ms = 0.5;
  svc_cfg.queue_capacity = 1024;
  svc_cfg.cache_capacity = 64;

  constexpr serve::RequestMode kModes[] = {serve::RequestMode::kSelect,
                                           serve::RequestMode::kIndirect,
                                           serve::RequestMode::kPredict};

  // --- Contract check: batched serving == one-shot library calls. ---
  // The service reads the matrix back from the file, so the reference
  // computation does too — both sides see the identical Csr.
  bool identical = true;
  {
    serve::Service service(svc_cfg, registry);
    for (const auto& path : paths) {
      const auto matrix = read_matrix_market(path);
      const auto features = extract_features(matrix);
      const Format expect = selector_a->select(features);
      const auto sel =
          service.call(make_request("chk-sel", serve::RequestMode::kSelect,
                                    path));
      if (!sel.ok || sel.format != expect) identical = false;
      const auto prd =
          service.call(make_request("chk-prd", serve::RequestMode::kPredict,
                                    path));
      if (!prd.ok || prd.predicted_us.size() != perf->formats().size())
        identical = false;
      for (std::size_t k = 0; identical && k < prd.predicted_us.size(); ++k) {
        const auto [f, us] = prd.predicted_us[k];
        if (f != perf->formats()[k] ||
            us != perf->predict_seconds(features, f) * 1e6)
          identical = false;
      }
    }
  }
  std::printf("== contract: batched == one-shot: %s ==\n",
              identical ? "yes" : "NO");

  // --- Closed loop: 4 clients, hot swaps mid-run. ---
  std::printf("== closed loop: %d clients x %d requests, %d hot swaps ==\n",
              cfg.clients(), cfg.requests_per_client(), cfg.swaps());
  std::vector<double> closed_lat;
  std::uint64_t closed_failed = 0;
  std::uint64_t closed_cache_hits = 0;
  double closed_wall_s = 0.0;
  bool versions_monotonic = true;
  std::uint64_t swaps_done = 0;
  {
    serve::Service service(svc_cfg, registry);
    std::mutex agg_mu;
    std::atomic<bool> done{false};
    timer.reset();
    std::vector<std::thread> clients;
    for (int c = 0; c < cfg.clients(); ++c) {
      clients.emplace_back([&, c] {
        std::vector<double> lat;
        std::uint64_t failed = 0, hits = 0, last_version = 0;
        bool monotonic = true;
        for (int k = 0; k < cfg.requests_per_client(); ++k) {
          const int pick = c * cfg.requests_per_client() + k;
          const auto rsp = service.call(make_request(
              "c" + std::to_string(c) + "-" + std::to_string(k),
              kModes[pick % 3],
              paths[static_cast<std::size_t>(pick) % paths.size()]));
          if (!rsp.ok) ++failed;
          if (rsp.cache_hit) ++hits;
          // A client never sees the model version move backwards.
          if (rsp.ok && rsp.model_version < last_version) monotonic = false;
          if (rsp.ok) last_version = rsp.model_version;
          lat.push_back(rsp.latency_ms);
        }
        std::lock_guard<std::mutex> lock(agg_mu);
        closed_lat.insert(closed_lat.end(), lat.begin(), lat.end());
        closed_failed += failed;
        closed_cache_hits += hits;
        versions_monotonic = versions_monotonic && monotonic;
      });
    }
    std::thread swapper([&] {
      for (int s = 0; s < cfg.swaps() && !done.load(); ++s) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        registry.install(s % 2 == 0 ? selector_b : selector_a, perf);
        ++swaps_done;
      }
    });
    for (auto& t : clients) t.join();
    done.store(true);
    swapper.join();
    closed_wall_s = timer.seconds();
    service.shutdown();
  }
  const auto total_closed =
      static_cast<double>(cfg.clients() * cfg.requests_per_client());
  const double closed_rps = total_closed / closed_wall_s;
  const Percentiles closed_p = percentiles_ms(closed_lat);
  std::printf("  %.0f req in %.2f s = %.0f req/s  (p50 %.2f ms, p95 %.2f ms, "
              "p99 %.2f ms)\n",
              total_closed, closed_wall_s, closed_rps, closed_p.p50,
              closed_p.p95, closed_p.p99);
  std::printf("  failed %llu, cache hits %llu, swaps %llu, versions "
              "monotonic: %s\n",
              static_cast<unsigned long long>(closed_failed),
              static_cast<unsigned long long>(closed_cache_hits),
              static_cast<unsigned long long>(swaps_done),
              versions_monotonic ? "yes" : "NO");

  // --- Open loop: paced offered rate, count rejections separately. ---
  std::printf("== open loop: %d requests at %.0f req/s offered ==\n",
              cfg.open_requests(), cfg.open_rate_rps());
  std::vector<double> open_lat;
  std::uint64_t open_rejected = 0, open_failed = 0;
  double open_wall_s = 0.0;
  {
    serve::Service service(svc_cfg, registry);
    std::vector<std::future<serve::Response>> futures;
    futures.reserve(static_cast<std::size_t>(cfg.open_requests()));
    const auto interval = std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(1.0 / cfg.open_rate_rps()));
    timer.reset();
    const auto start = std::chrono::steady_clock::now();
    for (int k = 0; k < cfg.open_requests(); ++k) {
      std::this_thread::sleep_until(start + k * interval);
      futures.push_back(service.submit(make_request(
          "o" + std::to_string(k), kModes[k % 3],
          paths[static_cast<std::size_t>(k) % paths.size()])));
    }
    for (auto& f : futures) {
      const auto rsp = f.get();
      if (rsp.ok) {
        open_lat.push_back(rsp.latency_ms);
      } else if (rsp.error.rfind("rejected", 0) == 0) {
        ++open_rejected;
      } else {
        ++open_failed;
      }
    }
    open_wall_s = timer.seconds();
    service.shutdown();
  }
  const double open_rps =
      static_cast<double>(open_lat.size()) / open_wall_s;
  const Percentiles open_p = percentiles_ms(open_lat);
  std::printf("  served %zu (%.0f req/s), rejected %llu, failed %llu  "
              "(p50 %.2f ms, p95 %.2f ms, p99 %.2f ms)\n",
              open_lat.size(), open_rps,
              static_cast<unsigned long long>(open_rejected),
              static_cast<unsigned long long>(open_failed), open_p.p50,
              open_p.p95, open_p.p99);

  for (const auto& path : paths) std::remove(path.c_str());

  std::ofstream out(cfg.out_path);
  JsonWriter json(out);
  json.begin_object();
  json.key("config");
  json.begin_object();
  json.kv("smoke", cfg.smoke);
  json.kv("threads", svc_cfg.threads);
  json.kv("max_batch", static_cast<std::uint64_t>(svc_cfg.max_batch));
  json.kv("max_delay_ms", svc_cfg.max_delay_ms);
  json.kv("queue_capacity",
          static_cast<std::uint64_t>(svc_cfg.queue_capacity));
  json.kv("matrices", cfg.matrices());
  json.kv("train_s", train_s);
  json.end_object();
  json.kv("batched_matches_one_shot", identical);
  json.key("closed_loop");
  json.begin_object();
  json.kv("clients", cfg.clients());
  json.kv("requests", static_cast<std::uint64_t>(total_closed));
  json.kv("wall_s", closed_wall_s);
  json.kv("throughput_rps", closed_rps);
  write_percentiles(json, closed_p);
  json.kv("failed", closed_failed);
  json.kv("cache_hits", closed_cache_hits);
  json.kv("hot_swaps", swaps_done);
  json.kv("versions_monotonic", versions_monotonic);
  json.end_object();
  json.key("open_loop");
  json.begin_object();
  json.kv("offered_rps", cfg.open_rate_rps());
  json.kv("requests", cfg.open_requests());
  json.kv("served", static_cast<std::uint64_t>(open_lat.size()));
  json.kv("rejected", open_rejected);
  json.kv("failed", open_failed);
  json.kv("wall_s", open_wall_s);
  json.kv("achieved_rps", open_rps);
  write_percentiles(json, open_p);
  json.end_object();
  json.end_object();
  out << '\n';
  std::printf("wrote %s\n", cfg.out_path.c_str());

  const bool pass = identical && versions_monotonic && closed_failed == 0 &&
                    open_failed == 0;
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return main_impl(argc, argv); }
