// Reproduces Fig. 3: achieved GFLOPS of all seven formats across a spread of
// matrices (Tesla K80c, single precision) — demonstrating that no single
// format wins consistently and per-matrix spreads are large.
#include <cstdio>

#include "bench_util.hpp"
#include "gpusim/oracle.hpp"
#include "gpusim/row_summary.hpp"
#include "synth/generators.hpp"

using namespace spmvml;

int main() {
  bench::banner("Fig. 3 — GFLOPS across formats, K80c single precision",
                "Nisa et al. 2018, Fig. 3");

  struct Sample {
    const char* name;
    GenSpec spec;
  };
  auto spec = [](MatrixFamily f, index_t rows, double mu, double cv,
                 std::uint64_t seed) {
    GenSpec s;
    s.family = f;
    s.rows = rows;
    s.cols = rows;
    s.row_mu = mu;
    s.row_cv = cv;
    s.seed = seed;
    return s;
  };
  const std::vector<Sample> samples = {
      {"stencil-small", spec(MatrixFamily::kStencil, 40'000, 5, 0, 1)},
      {"banded-mid", spec(MatrixFamily::kBanded, 120'000, 14, 0, 2)},
      {"banded-large", spec(MatrixFamily::kBanded, 400'000, 24, 0, 3)},
      {"uniform-low-cv", spec(MatrixFamily::kUniformRandom, 150'000, 12, 0.15, 4)},
      {"uniform-mid-cv", spec(MatrixFamily::kUniformRandom, 150'000, 12, 0.9, 5)},
      {"uniform-high-cv", spec(MatrixFamily::kUniformRandom, 150'000, 12, 2.5, 6)},
      {"powerlaw-web", spec(MatrixFamily::kPowerLaw, 200'000, 10, 0, 7)},
      {"powerlaw-social", spec(MatrixFamily::kPowerLaw, 350'000, 18, 0, 8)},
      {"block-multiphys", spec(MatrixFamily::kBlockRandom, 100'000, 24, 0.3, 9)},
      {"geom-graph", spec(MatrixFamily::kGeomGraph, 250'000, 13, 0, 10)},
      {"tiny-circuit", spec(MatrixFamily::kUniformRandom, 3'000, 4, 0.6, 11)},
      {"tiny-skewed", spec(MatrixFamily::kPowerLaw, 2'000, 6, 0, 13)},
      {"small-stencil", spec(MatrixFamily::kStencil, 10'000, 5, 0, 14)},
      {"long-rows", spec(MatrixFamily::kUniformRandom, 20'000, 120, 0.4, 12)},
      {"mid-mildskew", spec(MatrixFamily::kUniformRandom, 60'000, 9, 0.5, 15)},
  };

  const MeasurementOracle oracle(tesla_k40c(), Precision::kSingle);

  std::vector<std::string> header = {"matrix"};
  for (Format f : kAllFormats) header.emplace_back(format_name(f));
  header.emplace_back("winner");
  TablePrinter table(header);

  std::array<int, kNumFormats> wins{};
  for (const auto& sample : samples) {
    const auto m = generate(sample.spec);
    const auto s = summarize(m);
    std::vector<std::string> row = {sample.name};
    double best = 0.0;
    Format best_format = Format::kCsr;
    for (Format f : kAllFormats) {
      const auto meas = oracle.measure(s, f, sample.spec.seed);
      row.push_back(TablePrinter::fmt(meas.gflops, 1));
      if (meas.gflops > best) {
        best = meas.gflops;
        best_format = f;
      }
    }
    ++wins[static_cast<std::size_t>(best_format)];
    row.emplace_back(format_name(best_format));
    table.add_row(std::move(row));
  }
  std::printf("%s", table.to_string().c_str());

  int distinct = 0;
  for (int w : wins) distinct += w > 0 ? 1 : 0;
  std::printf(
      "\nShape to reproduce (paper): no single format is a consistent\n"
      "winner. Distinct winning formats here: %d of %d.\n",
      distinct, static_cast<int>(wins.size()));
  return 0;
}
