// Reproduces Tables VII, VIII and IX: classification accuracy over all
// formats (COO, CSR, ELL, HYB, CSR5, merge-CSR, SELL — the paper's six
// plus the SELL-C-sigma seventh class) with feature set 1, sets 1+2 and
// sets 1+2+3.
#include "classify_tables.hpp"

using namespace spmvml;
using namespace spmvml::bench;

int main() {
  run_classification_table(
      "Table VII — 7 formats, feature set 1 (5 features)",
      "Nisa et al. 2018, Table VII", kAllFormats, FeatureSet::kSet1, false,
      {{{60, 62, 62, 67}}, {{64, 63, 64, 68}},
       {{65, 65, 67, 69}}, {{63, 65, 67, 69}}});

  run_classification_table(
      "Table VIII — 7 formats, feature sets 1+2 (11 features)",
      "Nisa et al. 2018, Table VIII", kAllFormats, FeatureSet::kSet12, false,
      {{{81, 83, 83, 85}}, {{81, 85, 85, 88}},
       {{79, 83, 82, 84}}, {{81, 83, 84, 86}}});

  run_classification_table(
      "Table IX — 7 formats, feature sets 1+2+3 (17 features)",
      "Nisa et al. 2018, Table IX", kAllFormats, FeatureSet::kSet123, false,
      {{{78, 83, 83, 85}}, {{82, 85, 85, 88}},
       {{79, 83, 82, 84}}, {{79, 83, 83, 85}}});

  std::printf(
      "\nShape to reproduce: many-format accuracy below the 3-format tables\n"
      "for set 1, recovering with sets 1+2; extra set-3 features give no\n"
      "further improvement; XGBoost best or tied-best in most rows.\n");
  return 0;
}
