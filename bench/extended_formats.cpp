// Supporting experiment beyond the paper's six formats: DIA, BSR and
// SELL-C-sigma (§VII's related formats). Reports each format's storage
// blow-up and measured CPU SpMV throughput across structure families —
// the raw material for extending the selector's candidate set (the
// paper's future-work direction).
#include <cstdio>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "sparse/bsr.hpp"
#include "sparse/dia.hpp"
#include "sparse/sell.hpp"
#include "sparse/spmv.hpp"
#include "synth/generators.hpp"

using namespace spmvml;
using namespace spmvml::bench;

namespace {

template <typename MatrixT>
double time_spmv(const MatrixT& m, std::span<const double> x,
                 std::span<double> y, int reps) {
  WallTimer timer;
  for (int r = 0; r < reps; ++r) m.spmv(x, y);
  return timer.seconds() / reps;
}

}  // namespace

int main() {
  banner("Extended formats — DIA / BSR / SELL-C-sigma storage & CPU SpMV",
         "Nisa et al. 2018, §VII related formats (supporting study)");

  struct Sample {
    const char* name;
    GenSpec spec;
  };
  auto spec = [](MatrixFamily f, index_t rows, double mu, double cv,
                 index_t bs, std::uint64_t seed) {
    GenSpec s;
    s.family = f;
    s.rows = rows;
    s.cols = rows;
    s.row_mu = mu;
    s.row_cv = cv;
    s.block_size = bs;
    s.seed = seed;
    return s;
  };
  const std::vector<Sample> samples = {
      {"banded", spec(MatrixFamily::kBanded, 60'000, 14, 0, 8, 1)},
      {"stencil", spec(MatrixFamily::kStencil, 62'500, 5, 0, 8, 2)},
      {"block", spec(MatrixFamily::kBlockRandom, 40'000, 24, 0.3, 8, 3)},
      {"uniform", spec(MatrixFamily::kUniformRandom, 50'000, 10, 0.8, 8, 4)},
      {"powerlaw", spec(MatrixFamily::kPowerLaw, 60'000, 9, 0, 8, 5)},
  };

  TablePrinter storage({"matrix", "CSR MB", "DIA fill", "BSR4 fill",
                        "SELL-32 pad", "ELL pad"});
  TablePrinter speed({"matrix", "CSR us", "DIA us", "BSR4 us", "SELL us",
                      "CPU winner"});
  for (const auto& s : samples) {
    const auto m = generate(s.spec);
    std::vector<double> x(static_cast<std::size_t>(m.cols()), 1.0);
    std::vector<double> y(static_cast<std::size_t>(m.rows()));
    const int reps = 5;

    const auto bsr = Bsr<double>::from_csr(m, 4);
    const auto sell = Sell<double>::from_csr(m, 32, 256);
    const auto ell_pad = Ell<double>::from_csr(m).padding_ratio();

    // DIA only exists for banded structures; huge diagonal counts are the
    // point of the cap.
    bool has_dia = true;
    double dia_fill = 0.0, t_dia = 0.0;
    try {
      const auto dia = Dia<double>::from_csr(m, 4096);
      dia_fill = dia.fill_ratio();
      t_dia = time_spmv(dia, x, y, reps);
    } catch (const Error&) {
      has_dia = false;
    }

    const double t_csr = time_spmv(m, x, y, reps);
    const double t_bsr = time_spmv(bsr, x, y, reps);
    const double t_sell = time_spmv(sell, x, y, reps);

    storage.add_row({s.name,
                     TablePrinter::fmt(static_cast<double>(m.bytes()) / 1e6, 1),
                     has_dia ? TablePrinter::fmt(dia_fill, 2) : "n/a (>4096 diags)",
                     TablePrinter::fmt(bsr.fill_ratio(), 2),
                     TablePrinter::fmt(sell.padding_ratio(), 2),
                     TablePrinter::fmt(ell_pad, 2)});

    double best = t_csr;
    const char* winner = "CSR";
    if (has_dia && t_dia < best) { best = t_dia; winner = "DIA"; }
    if (t_bsr < best) { best = t_bsr; winner = "BSR"; }
    if (t_sell < best) { best = t_sell; winner = "SELL"; }
    speed.add_row({s.name, TablePrinter::fmt(t_csr * 1e6, 0),
                   has_dia ? TablePrinter::fmt(t_dia * 1e6, 0) : "n/a",
                   TablePrinter::fmt(t_bsr * 1e6, 0),
                   TablePrinter::fmt(t_sell * 1e6, 0), winner});
  }
  std::printf("storage footprints:\n%s\n", storage.to_string().c_str());
  std::printf("CPU SpMV times (mean of 5 runs):\n%s",
              speed.to_string().c_str());
  std::printf(
      "\nExpected shapes: DIA fill ~1 on banded/stencil and unusable on\n"
      "unstructured; BSR fills well only on block matrices; SELL padding\n"
      "sits between 1.0 and ELL's; no single format wins every row —\n"
      "the format-selection problem extends beyond the paper's six.\n");
  return 0;
}
