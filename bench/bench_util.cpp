#include "bench_util.hpp"

#include <cstdio>

namespace spmvml::bench {

std::vector<MachineConfig> machine_configs() {
  return {{0, Precision::kSingle, "K80c single"},
          {0, Precision::kDouble, "K80c double"},
          {1, Precision::kSingle, "P100 single"},
          {1, Precision::kDouble, "P100 double"}};
}

bool fast() { return fast_mode(); }

const LabeledCorpus& corpus() {
  static const LabeledCorpus shared = [] {
    const double scale = corpus_scale();
    const auto plan = make_corpus_plan(scale, root_seed());
    CollectOptions options;
    std::size_t last_pct = 0;
    options.progress = [&last_pct](std::size_t done, std::size_t total) {
      const std::size_t pct = done * 100 / total;
      if (pct >= last_pct + 10) {
        last_pct = pct;
        std::printf("  [corpus] labeled %zu/%zu matrices (%zu%%)\n", done,
                    total, pct);
        std::fflush(stdout);
      }
    };
    std::printf("[corpus] scale=%.2f (%zu matrices), cache=%s\n", scale,
                plan.size(), "spmvml_corpus_cache.csv");
    WallTimer timer;
    auto corpus = load_or_collect("spmvml_corpus_cache.csv", plan, options);
    std::printf("[corpus] ready in %.1fs\n", timer.seconds());
    return corpus;
  }();
  return shared;
}

void banner(const std::string& experiment, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

EvalResult classify_eval(const ClassificationStudy& study, ModelKind kind,
                         std::uint64_t seed) {
  const auto [train_idx, test_idx] =
      ml::split_indices(study.data, 0.2, seed);
  const auto train = study.data.subset(train_idx);

  auto model = make_classifier(kind, fast());
  model->fit(train.x, train.labels);

  EvalResult result;
  result.truth.reserve(test_idx.size());
  result.predicted.reserve(test_idx.size());
  result.times.reserve(test_idx.size());
  for (std::size_t i : test_idx) {
    result.truth.push_back(study.data.labels[i]);
    result.predicted.push_back(model->predict(study.data.x[i]));
    result.times.push_back(study.times[i]);
  }
  result.accuracy = ml::accuracy(result.truth, result.predicted);
  return result;
}

double classify_accuracy(const ClassificationStudy& study, ModelKind kind,
                         std::uint64_t seed) {
  return classify_eval(study, kind, seed).accuracy;
}

}  // namespace spmvml::bench
