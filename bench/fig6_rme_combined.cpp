// Reproduces Fig. 6: average relative mean error (RME) of the joint
// 7-format performance model — MLP regressor vs MLP-ensemble regressor —
// for the four feature sets, on both GPUs (double precision).
#include <cstdio>

#include "bench_util.hpp"

using namespace spmvml;
using namespace spmvml::bench;

namespace {

double joint_rme(int arch, FeatureSet set, RegressorKind kind,
                 std::uint64_t seed) {
  const auto study = make_joint_regression_study(
      corpus(), arch, Precision::kDouble, kAllFormats, set);
  const auto [train_idx, test_idx] = ml::split_indices(study.data, 0.2, seed);
  const auto train = study.data.subset(train_idx);
  auto model = make_regressor(kind, fast());
  model->fit(train.x, train.targets);
  std::vector<double> measured, predicted;
  measured.reserve(test_idx.size());
  for (std::size_t i : test_idx) {
    measured.push_back(study.seconds[i]);
    predicted.push_back(
        regression_target_to_seconds(model->predict(study.data.x[i])));
  }
  return ml::relative_mean_error(measured, predicted);
}

}  // namespace

int main() {
  banner("Fig. 6 — joint 7-format RME: MLP vs MLP ensemble, double precision",
         "Nisa et al. 2018, Fig. 6");

  const std::vector<FeatureSet> sets = {FeatureSet::kSet1, FeatureSet::kSet12,
                                        FeatureSet::kSet123,
                                        FeatureSet::kImportant};
  for (int arch = 0; arch < kNumArchs; ++arch) {
    const char* name = arch == 0 ? "K80c" : "P100";
    TablePrinter table({"feature set", "MLP RME", "MLP ensemble RME"});
    double best_ens = 1e9;
    for (FeatureSet set : sets) {
      const double mlp = joint_rme(arch, set, RegressorKind::kMlp, 17);
      const double ens =
          joint_rme(arch, set, RegressorKind::kMlpEnsemble, 17);
      best_ens = std::min(best_ens, ens);
      table.add_row({feature_set_name(set), TablePrinter::pct(mlp, 1),
                     TablePrinter::pct(ens, 1)});
      std::printf("  [%s] %s: MLP %.1f%%, ensemble %.1f%%\n", name,
                  feature_set_name(set), mlp * 100.0, ens * 100.0);
      std::fflush(stdout);
    }
    std::printf("\n%s (double precision):\n%s", name,
                table.to_string().c_str());
    std::printf("best ensemble RME: %.1f%% (paper: ~10%% K80c, ~12%% P100)\n",
                best_ens * 100.0);
  }
  std::printf(
      "\nShape to reproduce: ensemble at or below plain MLP everywhere;\n"
      "richer feature sets reduce RME; overall RME near 10%%.\n");
  return 0;
}
