// Reproduces Tables IV, V and VI: classification accuracy for the three
// basic formats (ELL, CSR, HYB) with feature set 1, sets 1+2, and sets
// 1+2+3, across both GPUs, both precisions and four model families.
// Matrices whose overall-best format is COO are dropped (§V-A).
#include "classify_tables.hpp"

using namespace spmvml;
using namespace spmvml::bench;

int main() {
  // Paper rows: {decision tree, SVM, MLP, XGBoost} per machine config.
  run_classification_table(
      "Table IV — 3 formats (ELL/CSR/HYB), feature set 1 (5 features)",
      "Nisa et al. 2018, Table IV", kBasicFormats, FeatureSet::kSet1, true,
      {{{69, 62, 68, 69}}, {{69, 62, 68, 70}},
       {{72, 72, 75, 75}}, {{72, 69, 73, 74}}});

  run_classification_table(
      "Table V — 3 formats (ELL/CSR/HYB), feature sets 1+2 (11 features)",
      "Nisa et al. 2018, Table V", kBasicFormats, FeatureSet::kSet12, true,
      {{{89, 88, 88, 91}}, {{86, 87, 88, 89}},
       {{85, 89, 87, 88}}, {{86, 87, 88, 89}}});

  run_classification_table(
      "Table VI — 3 formats (ELL/CSR/HYB), feature sets 1+2+3 (17 features)",
      "Nisa et al. 2018, Table VI", kBasicFormats, FeatureSet::kSet123, true,
      {{{87, 88, 87, 91}}, {{84, 87, 86, 89}},
       {{86, 88, 86, 88}}, {{87, 87, 89, 89}}});

  std::printf(
      "\nShape to reproduce: set 1 clearly below sets 1+2; adding set 3\n"
      "gives no further gain; XGBoost best or tied-best in most rows.\n");
  return 0;
}
