// SpMV kernel perf gate (writes BENCH_spmv.json).
//
// Times every format's CPU SpMV three ways — serial scalar fallback,
// serial SIMD, and the parallel variant — against a replica of the
// seed-style scalar kernels for CSR, ELL and SELL, and times format conversions
// fresh (AnyMatrix::build) vs warm (ConversionArena reuse). The bench
// *asserts* the bitwise contract while it measures: for every matrix
// and format the scalar, SIMD and parallel y vectors must be
// byte-identical, mirroring serving_bench's batched-vs-one-shot check.
// A violation prints the offending case and exits non-zero, so CI
// gates on the contract, not just the speed.
//
//   usage: spmv_kernels [--smoke] [--out spmv.json]
//
// --smoke shrinks the matrices and rep counts so tools/check.sh and CI
// can run the contract assertions in seconds; the committed
// BENCH_spmv.json comes from a full run.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json_writer.hpp"
#include "common/timer.hpp"
#include "sparse/arena.hpp"
#include "sparse/parallel_spmv.hpp"
#include "sparse/simd.hpp"
#include "sparse/spmv.hpp"
#include "synth/generators.hpp"

namespace {

using namespace spmvml;

struct BenchConfig {
  bool smoke = false;
  std::string out_path;

  int reps() const { return smoke ? 3 : 15; }
};

struct MatrixSpec {
  const char* name;
  GenSpec gen;
};

GenSpec make_gen(MatrixFamily family, index_t n, double mu, double cv,
                 double band_frac = 0.05) {
  GenSpec g;
  g.family = family;
  g.rows = n;
  g.cols = n;
  g.row_mu = mu;
  g.row_cv = cv;
  g.band_frac = band_frac;
  g.seed = 42;
  return g;
}

std::vector<MatrixSpec> matrix_suite(const BenchConfig& cfg) {
  if (cfg.smoke)
    return {
        {"uniform-2k-mu16",
         make_gen(MatrixFamily::kUniformRandom, 2048, 16, 0.3)},
        {"banded-2k-mu16", make_gen(MatrixFamily::kBanded, 2048, 16, 0.3, 0.02)},
    };
  // Sized so the format arrays stay cache-resident: single-digit-ms
  // kernel calls keep min-of-reps robust against scheduler noise on
  // shared machines.
  return {
      {"uniform-16k-mu32",
       make_gen(MatrixFamily::kUniformRandom, 16384, 32, 0.3)},
      {"uniform-8k-mu64", make_gen(MatrixFamily::kUniformRandom, 8192, 64, 0.3)},
      {"uniform-4k-mu128",
       make_gen(MatrixFamily::kUniformRandom, 4096, 128, 0.3)},
      {"banded-16k-mu32", make_gen(MatrixFamily::kBanded, 16384, 32, 0.3, 0.02)},
      {"stencil-10k", make_gen(MatrixFamily::kStencil, 10000, 7, 0.0)},
  };
}

// ---------------------------------------------------------------------------
// Replicas of the seed's serial kernels — the speedup baseline. These
// reproduce the exact loops the repo shipped with before the SIMD
// layer (single-accumulator CSR rows; branchy column-major ELL walk).
// Their summation order differs from the lane-accumulated contract, so
// they are compared on speed only, never bitwise.

void seed_spmv_csr(const Csr<double>& a, const std::vector<double>& x,
                   std::vector<double>& y) {
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto values = a.values();
  for (index_t r = 0; r < a.rows(); ++r) {
    double sum{};
    for (index_t p = row_ptr[r]; p < row_ptr[r + 1]; ++p)
      sum += values[p] * x[col_idx[p]];
    y[r] = sum;
  }
}

void seed_spmv_ell(const Ell<double>& a, const std::vector<double>& x,
                   std::vector<double>& y) {
  std::fill(y.begin(), y.end(), 0.0);
  for (index_t k = 0; k < a.width(); ++k)
    for (index_t r = 0; r < a.rows(); ++r) {
      const index_t c = a.col_at(r, k);
      if (c != Ell<double>::kPad) y[r] += a.val_at(r, k) * x[c];
    }
}

void seed_spmv_sell(const Sell<double>& a, const std::vector<double>& x,
                    std::vector<double>& y) {
  // Branchy slice-by-slice walk with per-row scalar accumulation into the
  // permuted output — the naive kernel a SELL port would start from.
  std::fill(y.begin(), y.end(), 0.0);
  const auto perm = a.perm();
  const auto cols = a.col_idx();
  const auto vals = a.values();
  const auto slice_ptr = a.slice_ptr();
  for (index_t s = 0; s < a.num_slices(); ++s) {
    const index_t height = a.slice_rows(s);
    const index_t base = slice_ptr[static_cast<std::size_t>(s)];
    for (index_t k = 0; k < a.slice_width(s); ++k)
      for (index_t i = 0; i < height; ++i) {
        const index_t c = cols[static_cast<std::size_t>(base + k * height + i)];
        if (c != Sell<double>::kPad)
          y[static_cast<std::size_t>(perm[static_cast<std::size_t>(
              s * a.slice_height() + i)])] +=
              vals[static_cast<std::size_t>(base + k * height + i)] *
              x[static_cast<std::size_t>(c)];
      }
  }
}

/// Parallel dispatch over the variant; COO and CSR5 have no parallel
/// decomposition (their segmented carries are sequential), so they fall
/// back to the serial kernel and the bench records them as such.
void spmv_parallel_any(const AnyMatrix<double>& m, const std::vector<double>& x,
                       std::vector<double>& y) {
  switch (m.format()) {
    case Format::kCsr: return spmv_parallel(m.get<Csr<double>>(), x, y);
    case Format::kEll: return spmv_parallel(m.get<Ell<double>>(), x, y);
    case Format::kHyb: return spmv_parallel(m.get<Hyb<double>>(), x, y);
    case Format::kMergeCsr:
      return spmv_parallel(m.get<MergeCsr<double>>(), x, y);
    case Format::kSell: return spmv_parallel(m.get<Sell<double>>(), x, y);
    case Format::kCoo:
    case Format::kCsr5: return m.spmv(x, y);
  }
}

/// Seconds for one call, min over reps (one untimed warm-up first).
template <typename F>
double time_min(F&& run, int reps) {
  run();
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    run();
    best = std::min(best, t.seconds());
  }
  return best;
}

int main_impl(int argc, char** argv) {
  BenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      cfg.smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      cfg.out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: spmv_kernels [--smoke] [--out file]\n");
      return 2;
    }
  }

  const auto suite = matrix_suite(cfg);
  const bool simd_available = simd::enabled();
  bool all_bitwise_ok = true;
  double csr_best_speedup = 0.0, ell_best_speedup = 0.0,
         sell_best_speedup = 0.0;

  std::ostringstream os;
  JsonWriter json(os, /*indent=*/2);
  json.begin_object();
  json.key("config");
  json.begin_object();
  json.kv("smoke", cfg.smoke);
  json.kv("reps", cfg.reps());
  json.kv("value_type", "float64");
  json.kv("simd_isa", simd::active_isa());
  json.kv("hardware_threads",
          static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  json.end_object();

  json.key("matrices");
  json.begin_array();
  for (const auto& spec : suite) {
    const Csr<double> csr = generate(spec.gen);
    std::vector<double> x(static_cast<std::size_t>(csr.cols()));
    for (std::size_t i = 0; i < x.size(); ++i)
      x[i] = 1.0 + 0.001 * static_cast<double>(i % 97);
    std::vector<double> y_serial(static_cast<std::size_t>(csr.rows()));
    std::vector<double> y_simd(y_serial.size());
    std::vector<double> y_par(y_serial.size());
    std::vector<double> y_seed(y_serial.size());
    const double flops = 2.0 * static_cast<double>(csr.nnz());
    const std::size_t y_bytes = y_serial.size() * sizeof(double);

    ConversionArena<double> arena;
    json.begin_object();
    json.kv("name", spec.name);
    json.kv("rows", static_cast<std::int64_t>(csr.rows()));
    json.kv("nnz", static_cast<std::int64_t>(csr.nnz()));
    json.key("formats");
    json.begin_object();
    for (const Format f : kAllFormats) {
      // Conversion cost: fresh allocation vs warm arena reuse.
      double fresh_ms = 0.0, warm_ms = 0.0;
      {
        WallTimer t;
        const AnyMatrix<double> fresh = AnyMatrix<double>::build(f, csr);
        fresh_ms = t.millis();
      }
      arena.convert(f, csr);  // populate the slot
      {
        WallTimer t;
        arena.convert(f, csr);
        warm_ms = t.millis();
      }
      const AnyMatrix<double>& m = arena.convert(f, csr);

      // The three kernel variants, plus the byte-identity contract.
      simd::set_enabled(false);
      const double t_serial = time_min([&] { m.spmv(x, y_serial); }, cfg.reps());
      simd::set_enabled(simd_available);
      const double t_simd = time_min([&] { m.spmv(x, y_simd); }, cfg.reps());
      const double t_par =
          time_min([&] { spmv_parallel_any(m, x, y_par); }, cfg.reps());
      const bool bitwise_ok =
          std::memcmp(y_serial.data(), y_simd.data(), y_bytes) == 0 &&
          std::memcmp(y_serial.data(), y_par.data(), y_bytes) == 0;
      if (!bitwise_ok) {
        all_bitwise_ok = false;
        std::fprintf(stderr,
                     "CONTRACT VIOLATION: %s/%s serial, SIMD and parallel y "
                     "are not byte-identical\n",
                     spec.name, format_name(f));
      }

      // Seed-replica baseline for the formats the acceptance gates.
      // Replicas read the arena's arrays — the same bytes the SIMD
      // kernels just touched — so memory placement can't skew the
      // comparison.
      double seed_gflops = 0.0, speedup_vs_seed = 0.0;
      if (f == Format::kCsr) {
        const auto& mc = m.get<Csr<double>>();
        const double t_seed =
            time_min([&] { seed_spmv_csr(mc, x, y_seed); }, cfg.reps());
        seed_gflops = flops / t_seed / 1e9;
        speedup_vs_seed = t_seed / std::min(t_simd, t_par);
        csr_best_speedup = std::max(csr_best_speedup, speedup_vs_seed);
      } else if (f == Format::kEll) {
        const auto& ell = m.get<Ell<double>>();
        const double t_seed =
            time_min([&] { seed_spmv_ell(ell, x, y_seed); }, cfg.reps());
        seed_gflops = flops / t_seed / 1e9;
        speedup_vs_seed = t_seed / std::min(t_simd, t_par);
        ell_best_speedup = std::max(ell_best_speedup, speedup_vs_seed);
      } else if (f == Format::kSell) {
        const auto& sell = m.get<Sell<double>>();
        const double t_seed =
            time_min([&] { seed_spmv_sell(sell, x, y_seed); }, cfg.reps());
        seed_gflops = flops / t_seed / 1e9;
        speedup_vs_seed = t_seed / std::min(t_simd, t_par);
        sell_best_speedup = std::max(sell_best_speedup, speedup_vs_seed);
      }

      json.key(format_name(f));
      json.begin_object();
      json.kv("gflops_serial_scalar", flops / t_serial / 1e9);
      json.kv("gflops_simd", flops / t_simd / 1e9);
      json.kv("gflops_parallel", flops / t_par / 1e9);
      if (seed_gflops > 0.0) {
        json.kv("gflops_seed_serial", seed_gflops);
        json.kv("speedup_vs_seed", speedup_vs_seed);
      }
      json.kv("convert_fresh_ms", fresh_ms);
      json.kv("convert_warm_ms", warm_ms);
      json.kv("bitwise_identical", bitwise_ok);
      json.end_object();
    }
    json.end_object();
    json.end_object();
  }
  json.end_array();

  json.key("headline");
  json.begin_object();
  json.kv("csr_speedup_vs_seed", csr_best_speedup);
  json.kv("ell_speedup_vs_seed", ell_best_speedup);
  json.kv("sell_speedup_vs_seed", sell_best_speedup);
  json.end_object();
  json.kv("bitwise_identical", all_bitwise_ok);
  json.end_object();

  const std::string payload = os.str();
  if (!cfg.out_path.empty()) {
    std::ofstream out(cfg.out_path);
    out << payload << "\n";
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", cfg.out_path.c_str());
      return 2;
    }
  }
  std::printf("%s\n", payload.c_str());
  std::fprintf(stderr,
               "csr_speedup=%.2fx ell_speedup=%.2fx sell_speedup=%.2fx "
               "bitwise=%s\n",
               csr_best_speedup, ell_best_speedup, sell_best_speedup,
               all_bitwise_ok ? "ok" : "VIOLATED");
  return all_bitwise_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return main_impl(argc, argv); }
