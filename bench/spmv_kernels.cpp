// google-benchmark microbenchmarks of the CPU SpMV kernels backing every
// format — wall-clock validation that conversions and kernels behave
// (complements the GPU *simulator* the studies use for timing).
#include <benchmark/benchmark.h>

#include <vector>

#include "features/features.hpp"
#include "sparse/spmv.hpp"
#include "synth/generators.hpp"

namespace {

using namespace spmvml;

const Csr<double>& bench_matrix() {
  static const Csr<double> m = [] {
    GenSpec spec;
    spec.family = MatrixFamily::kUniformRandom;
    spec.rows = 50'000;
    spec.cols = 50'000;
    spec.row_mu = 12.0;
    spec.row_cv = 0.8;
    spec.seed = 42;
    return generate(spec);
  }();
  return m;
}

template <Format F>
void BM_Spmv(benchmark::State& state) {
  const auto& csr = bench_matrix();
  const auto any = AnyMatrix<double>::build(F, csr);
  std::vector<double> x(static_cast<std::size_t>(csr.cols()), 1.0);
  std::vector<double> y(static_cast<std::size_t>(csr.rows()));
  for (auto _ : state) {
    any.spmv(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * csr.nnz());
  state.counters["GFLOPS"] = benchmark::Counter(
      static_cast<double>(2 * csr.nnz() * state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}

BENCHMARK(BM_Spmv<Format::kCoo>)->Name("spmv/COO");
BENCHMARK(BM_Spmv<Format::kCsr>)->Name("spmv/CSR");
BENCHMARK(BM_Spmv<Format::kEll>)->Name("spmv/ELL");
BENCHMARK(BM_Spmv<Format::kHyb>)->Name("spmv/HYB");
BENCHMARK(BM_Spmv<Format::kCsr5>)->Name("spmv/CSR5");
BENCHMARK(BM_Spmv<Format::kMergeCsr>)->Name("spmv/merge-CSR");

void BM_Convert(benchmark::State& state) {
  const auto& csr = bench_matrix();
  const auto format = static_cast<Format>(state.range(0));
  for (auto _ : state) {
    auto any = AnyMatrix<double>::build(format, csr);
    benchmark::DoNotOptimize(any.nnz());
  }
  state.SetLabel(format_name(format));
}
BENCHMARK(BM_Convert)->DenseRange(0, kNumFormats - 1)->Name("convert");

void BM_FeatureExtraction(benchmark::State& state) {
  const auto& csr = bench_matrix();
  for (auto _ : state) {
    auto f = extract_features(csr);
    benchmark::DoNotOptimize(f.values.data());
  }
  state.SetItemsProcessed(state.iterations() * csr.nnz());
}
BENCHMARK(BM_FeatureExtraction)->Name("features/extract17");

}  // namespace

BENCHMARK_MAIN();
