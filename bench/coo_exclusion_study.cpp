// Reproduces §V-A: how often COO is the overall best format, and how
// little is lost by excluding it (the justification for dropping COO from
// the basic-format study).
#include <cstdio>

#include "bench_util.hpp"

using namespace spmvml;
using namespace spmvml::bench;

int main() {
  banner("§V-A — COO exclusion census",
         "Nisa et al. 2018, §V-A (COO rarely best among many; ~10% among "
         "the basic formats; exclusion loss minimal)");

  TablePrinter table({"Machine", "precision", "COO best of 7",
                      "COO best vs ELL/CSR/HYB", "mean exclusion penalty"});
  for (const auto& cfg : machine_configs()) {
    const auto census = coo_census(corpus(), cfg.arch, cfg.prec);
    const double frac_all = static_cast<double>(census.coo_best_all) /
                         static_cast<double>(census.total);
    const double frac4 = static_cast<double>(census.coo_best_basic4) /
                         static_cast<double>(census.total);
    table.add_row({std::string(cfg.label).substr(0, 4),
                   precision_name(cfg.prec),
                   std::to_string(census.coo_best_all) + " (" +
                       TablePrinter::pct(frac_all, 1) + ")",
                   std::to_string(census.coo_best_basic4) + " (" +
                       TablePrinter::pct(frac4, 1) + ")",
                   TablePrinter::fmt(census.mean_exclusion_penalty, 3) + "x"});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nShape to reproduce: COO essentially never wins among all seven\n"
      "formats (paper: zero double-precision cases, one single-precision\n"
      "case), and excluding it costs almost nothing.\n");
  return 0;
}
