// Reproduces Table XIV: direct classification (XGBoost) vs indirect
// classification — selecting the format with the lowest *predicted* time
// from per-format MLP-ensemble regressors — scored exactly (0% tolerance)
// and with the paper's 5% tolerance.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"

using namespace spmvml;
using namespace spmvml::bench;

int main() {
  banner("Table XIV — direct (XGBoost) vs indirect classification",
         "Nisa et al. 2018, Table XIV");

  TablePrinter table({"Machine", "precision", "XGBST (paper)",
                      "MLP ens. 0% tol (paper)", "MLP ens. 5% tol (paper)"});
  const std::array<std::array<int, 3>, 4> paper = {
      {{85, 78, 90}, {88, 86, 92}, {84, 77, 89}, {86, 78, 87}}};

  const auto configs = machine_configs();
  for (std::size_t c = 0; c < configs.size(); ++c) {
    const auto& cfg = configs[c];
    const auto study = make_classification_study(
        corpus(), cfg.arch, cfg.prec, kAllFormats, FeatureSet::kSet123);

    // Direct: XGBoost on the 80% split.
    const double direct =
        classify_accuracy(study, ModelKind::kXgboost, 7000 + c);

    // Indirect: per-format MLP-ensemble regressors trained on the same
    // 80% of matrices, then argmin of predicted time on the held-out 20%.
    const auto [train_idx, test_idx] =
        ml::split_indices(study.data, 0.2, 7000 + c);
    std::vector<ml::RegressorPtr> per_format;
    for (std::size_t fi = 0; fi < kAllFormats.size(); ++fi) {
      ml::Matrix x;
      std::vector<double> y;
      for (std::size_t i : train_idx) {
        x.push_back(study.data.x[i]);
        y.push_back(seconds_to_regression_target(study.times[i][fi]));
      }
      auto model = make_regressor(RegressorKind::kMlpEnsemble, fast());
      model->fit(x, y);
      per_format.push_back(std::move(model));
      std::printf("  [%s] regressor for %s trained\n", cfg.label,
                  format_name(kAllFormats[fi]));
      std::fflush(stdout);
    }
    std::vector<int> chosen;
    std::vector<std::vector<double>> times;
    for (std::size_t i : test_idx) {
      int best = 0;
      double best_t = 1e300;
      for (std::size_t fi = 0; fi < kAllFormats.size(); ++fi) {
        const double t = per_format[fi]->predict(study.data.x[i]);
        if (t < best_t) {
          best_t = t;
          best = static_cast<int>(fi);
        }
      }
      chosen.push_back(best);
      times.push_back(study.times[i]);
    }
    const double strict = tolerance_accuracy(chosen, times, 0.0);
    const double tolerant = tolerance_accuracy(chosen, times, 0.05);

    table.add_row(
        {std::string(cfg.label).substr(0, 4), precision_name(cfg.prec),
         TablePrinter::pct(direct, 0) + " (" + std::to_string(paper[c][0]) + "%)",
         TablePrinter::pct(strict, 0) + " (" + std::to_string(paper[c][1]) + "%)",
         TablePrinter::pct(tolerant, 0) + " (" + std::to_string(paper[c][2]) + "%)"});
  }
  std::printf("\n%s", table.to_string().c_str());
  std::printf(
      "\nShape to reproduce: 0%%-tolerance indirect below direct XGBoost;\n"
      "5%% tolerance recovers and can beat direct classification.\n");
  return 0;
}
