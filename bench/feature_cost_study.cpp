// Supporting experiment for §IV-A and the conclusion's "inexpensive
// deployment" claim: what do the features actually cost to compute,
// relative to the SpMV they optimise — and how much accuracy does
// sampled (sub-linear) extraction give up?
#include <cstdio>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "sparse/spmv.hpp"
#include "synth/generators.hpp"

using namespace spmvml;
using namespace spmvml::bench;

int main() {
  banner("Feature-cost study — O(1) vs O(nnz) vs sampled extraction",
         "Nisa et al. 2018, §IV-A (feature cost) + §VIII (edge deployment)");

  GenSpec spec;
  spec.family = MatrixFamily::kUniformRandom;
  spec.rows = 400'000;
  spec.cols = 400'000;
  spec.row_mu = 15.0;
  spec.row_cv = 0.8;
  spec.seed = 12;
  const auto m = generate(spec);
  std::vector<double> x(static_cast<std::size_t>(m.cols()), 1.0);
  std::vector<double> y(static_cast<std::size_t>(m.rows()));

  auto time_it = [](auto&& fn, int reps) {
    WallTimer timer;
    for (int r = 0; r < reps; ++r) fn();
    return timer.seconds() / reps * 1e3;  // ms
  };
  const double t_spmv = time_it([&] { m.spmv(x, y); }, 5);
  const double t_full = time_it([&] { (void)extract_features(m); }, 5);
  const double t_s10 =
      time_it([&] { (void)extract_features_sampled(m, 0.1, 1); }, 5);
  const double t_s01 =
      time_it([&] { (void)extract_features_sampled(m, 0.01, 1); }, 5);

  std::printf("matrix: %lld rows, %lld nnz\n\n",
              static_cast<long long>(m.rows()),
              static_cast<long long>(m.nnz()));
  TablePrinter table({"operation", "time (ms)", "vs one SpMV"});
  table.add_row({"CSR SpMV (1 iteration)", TablePrinter::fmt(t_spmv, 2), "1.0x"});
  table.add_row({"17 features, exact O(nnz)", TablePrinter::fmt(t_full, 2),
                 TablePrinter::fmt(t_full / t_spmv, 2) + "x"});
  table.add_row({"17 features, 10% row sample", TablePrinter::fmt(t_s10, 2),
                 TablePrinter::fmt(t_s10 / t_spmv, 2) + "x"});
  table.add_row({"17 features, 1% row sample", TablePrinter::fmt(t_s01, 2),
                 TablePrinter::fmt(t_s01 / t_spmv, 2) + "x"});
  std::printf("%s", table.to_string().c_str());

  // Accuracy cost of sampling: train on exact features, test with
  // sampled ones (the realistic deployment mismatch).
  const auto study = make_classification_study(
      corpus(), /*arch=*/1, Precision::kDouble, kAllFormats,
      FeatureSet::kSet12);
  auto model = make_classifier(ModelKind::kXgboost, fast());
  model->fit(study.data.x, study.data.labels);

  const auto plan = make_corpus_plan(0.05 * corpus_scale(), root_seed() + 7);
  const auto probe = collect_corpus(plan);
  const auto set = feature_set_indices(FeatureSet::kSet12);
  std::printf("\naccuracy on %zu fresh matrices (XGBoost, sets 1+2):\n",
              probe.size());
  for (double fraction : {1.0, 0.1, 0.01}) {
    std::vector<int> truth, pred;
    std::size_t i = 0;
    for (const auto& rec : probe.records) {
      // Regenerate the matrix to extract sampled features.
      const auto matrix = generate(plan.specs[i++]);
      const auto f = extract_features_sampled(matrix, fraction, 5);
      truth.push_back(rec.best_among(1, Precision::kDouble, kAllFormats));
      pred.push_back(model->predict(f.select(set)));
    }
    std::printf("  fraction %.2f -> accuracy %.1f%%\n", fraction,
                100.0 * ml::accuracy(truth, pred));
  }
  std::printf(
      "\nExpected: exact extraction costs on the order of one SpMV (it\n"
      "amortises instantly in iterative solvers); sampling buys a ~10x\n"
      "cheaper probe at a modest accuracy cost.\n");
  return 0;
}
