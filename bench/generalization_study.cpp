// Supporting experiment: structure-family generalization. The paper's
// 80/20 split mixes families between train and test; real deployments
// meet matrix kinds absent from training. Hold each family out entirely,
// train on the rest, test on the held-out family.
#include <cstdio>

#include "bench_util.hpp"
#include "synth/generators.hpp"

using namespace spmvml;
using namespace spmvml::bench;

int main() {
  banner("Generalization — leave-one-structure-family-out",
         "supporting experiment (no direct paper analogue)");

  const auto& data = corpus();
  const auto study = make_classification_study(
      data, /*arch=*/1, Precision::kDouble, kAllFormats, FeatureSet::kSet12);

  TablePrinter table({"held-out family", "n test", "accuracy",
                      "mean slowdown of choice"});
  for (int fam = 0; fam < kNumFamilies; ++fam) {
    ml::Matrix train_x, test_x;
    std::vector<int> train_y, test_y;
    std::vector<std::vector<double>> test_times;
    for (std::size_t i = 0; i < study.data.size(); ++i) {
      if (data.records[i].family == fam) {
        test_x.push_back(study.data.x[i]);
        test_y.push_back(study.data.labels[i]);
        test_times.push_back(study.times[i]);
      } else {
        train_x.push_back(study.data.x[i]);
        train_y.push_back(study.data.labels[i]);
      }
    }
    if (test_x.empty()) continue;
    auto model = make_classifier(ModelKind::kXgboost, fast());
    model->fit(train_x, train_y);
    const auto pred = model->predict_batch(test_x);
    const auto slowdowns = selection_slowdowns(pred, test_times);
    table.add_row({family_name(static_cast<MatrixFamily>(fam)),
                   std::to_string(test_x.size()),
                   TablePrinter::pct(ml::accuracy(test_y, pred), 1),
                   TablePrinter::fmt(ml::mean_slowdown(slowdowns), 3) + "x"});
    std::printf("  held out %s\n", family_name(static_cast<MatrixFamily>(fam)));
    std::fflush(stdout);
  }
  std::printf("\n%s", table.to_string().c_str());
  std::printf(
      "\nExpected: accuracy dips below the mixed-family 80/20 numbers —\n"
      "the features transfer, but unseen structure costs a few points;\n"
      "chosen formats stay within a small slowdown of optimal.\n");
  return 0;
}
