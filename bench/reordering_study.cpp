// Supporting experiment: matrix ordering changes SpMV performance and can
// change the best format — the locality effect behind the paper's Fig. 2
// twins, driven end-to-end here with RCM.
//
// For shuffled (arbitrary-order) matrices: report bandwidth, simulated
// gather traffic and per-format GFLOPS before and after RCM reordering,
// plus what a trained selector recommends for each version.
#include <cstdio>

#include "bench_util.hpp"
#include "gpusim/oracle.hpp"
#include "gpusim/row_summary.hpp"
#include "sparse/reorder.hpp"
#include "synth/generators.hpp"

using namespace spmvml;
using namespace spmvml::bench;

int main() {
  banner("Reordering study — RCM vs arbitrary labeling",
         "supporting: the locality mechanism behind Fig. 2 (DESIGN.md §6.1)");

  FormatSelector selector(ModelKind::kXgboost, FeatureSet::kSet12,
                          kAllFormats, fast());
  selector.fit(corpus(), /*arch=*/0, Precision::kDouble);
  const MeasurementOracle oracle(tesla_k40c(), Precision::kDouble);

  TablePrinter table({"matrix", "version", "bandwidth", "gather MB",
                      "best fmt (simulated)", "best GFLOPS", "selector says"});
  for (auto [family, name] : {std::pair{MatrixFamily::kBanded, "FEM-mesh"},
                              {MatrixFamily::kGeomGraph, "geom-graph"}}) {
    GenSpec spec;
    spec.family = family;
    spec.rows = 200'000;
    spec.cols = spec.rows;
    spec.row_mu = 11.0;
    spec.seed = 31;
    const auto native = generate(spec);
    const auto shuffled = shuffle_labels(native, 7);
    const auto recovered = permute_symmetric(shuffled, rcm_ordering(shuffled));

    struct Version {
      const char* label;
      const Csr<double>* m;
    };
    for (const Version& v : {Version{"native", &native},
                             Version{"shuffled", &shuffled},
                             Version{"RCM", &recovered}}) {
      const auto summary = summarize(*v.m);
      double best_gflops = 0.0;
      Format best = Format::kCsr;
      for (Format f : kAllFormats) {
        const auto meas = oracle.measure(summary, f, spec.seed);
        if (meas.gflops > best_gflops) {
          best_gflops = meas.gflops;
          best = f;
        }
      }
      const auto breakdown =
          simulate_cost(summary, Format::kCsr, tesla_k40c(),
                        Precision::kDouble);
      table.add_row({name, v.label, std::to_string(bandwidth(*v.m)),
                     TablePrinter::fmt(breakdown.gather_bytes / 1e6, 1),
                     format_name(best), TablePrinter::fmt(best_gflops, 1),
                     format_name(selector.select(*v.m))});
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nExpected shapes: shuffling explodes bandwidth and gather traffic\n"
      "and drops achieved GFLOPS; RCM recovers most of both. The trained\n"
      "selector adapts its recommendation to the ordering it is shown.\n");
  return 0;
}
