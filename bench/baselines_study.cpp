// Supporting experiment for §VII: the ML pipeline against the related
// work's non-ML strategies on the same study (P100, double, 7 formats):
//   * analytical bandwidth model (Li et al.'s direction),
//   * sampling-based runtime probing (Zardoshti et al.),
//   * confidence-gated hybrid execution (Li et al.'s SMAT).
#include <cstdio>

#include "bench_util.hpp"
#include "core/baselines.hpp"
#include "synth/generators.hpp"

using namespace spmvml;
using namespace spmvml::bench;

int main() {
  banner("Baselines — analytical / sampling / confidence vs ML",
         "Nisa et al. 2018, §VII (SMAT 85/82%; PMF model; adaptive probing)");

  const auto study = make_classification_study(
      corpus(), /*arch=*/1, Precision::kDouble, kAllFormats,
      FeatureSet::kSet12);
  const auto [train_idx, test_idx] = ml::split_indices(study.data, 0.2, 55);
  const auto train = study.data.subset(train_idx);

  auto xgb = make_classifier(ModelKind::kXgboost, fast());
  xgb->fit(train.x, train.labels);

  // ML direct.
  std::vector<int> truth, ml_pred;
  for (std::size_t i : test_idx) {
    truth.push_back(study.data.labels[i]);
    ml_pred.push_back(xgb->predict(study.data.x[i]));
  }

  // Analytical (no training; uses the full 17 features).
  const AnalyticalModel analytical(tesla_p100(), Precision::kDouble);
  const auto full = make_classification_study(
      corpus(), 1, Precision::kDouble, kAllFormats, FeatureSet::kSet123);
  std::vector<int> an_pred;
  for (std::size_t i : test_idx) {
    FeatureVector f;
    const auto row = full.data.x[i];
    for (int k = 0; k < kNumFeatures; ++k)
      f.values[static_cast<std::size_t>(k)] = row[static_cast<std::size_t>(k)];
    an_pred.push_back(analytical.select(f, kAllFormats));
  }

  // Confidence hybrid at several thresholds.
  TablePrinter table({"selector", "accuracy", "fallback executions"});
  table.add_row({"XGBoost (direct)",
                 TablePrinter::pct(ml::accuracy(truth, ml_pred), 1), "0%"});
  table.add_row({"analytical model",
                 TablePrinter::pct(ml::accuracy(truth, an_pred), 1), "0%"});
  for (double threshold : {0.6, 0.8, 0.95}) {
    const ConfidenceSelector hybrid(*xgb, threshold);
    std::vector<int> pred;
    int executed = 0;
    for (std::size_t i : test_idx) {
      const auto choice = hybrid.select(study.data.x[i], study.times[i]);
      pred.push_back(choice.label);
      executed += choice.executed ? 1 : 0;
    }
    table.add_row(
        {"confidence >= " + TablePrinter::fmt(threshold, 2),
         TablePrinter::pct(ml::accuracy(truth, pred), 1),
         TablePrinter::pct(static_cast<double>(executed) /
                               static_cast<double>(test_idx.size()),
                           0)});
  }

  // Sampling probe (needs the matrices; use a fresh reduced corpus).
  {
    const auto plan = make_corpus_plan(0.04 * corpus_scale(), root_seed() + 3);
    const auto probe = collect_corpus(plan);
    const MeasurementOracle oracle(tesla_p100(), Precision::kDouble);
    for (double fraction : {0.05, 0.25}) {
      const SamplingSelector sampler(oracle, fraction);
      std::vector<int> t2, pred;
      std::size_t i = 0;
      for (const auto& rec : probe.records) {
        const auto matrix = generate(plan.specs[i++]);
        t2.push_back(rec.best_among(1, Precision::kDouble, kAllFormats));
        pred.push_back(sampler.select(matrix, rec.seed, kAllFormats));
      }
      table.add_row({"sampling probe (" + TablePrinter::pct(fraction, 0) +
                         " of nnz, " + std::to_string(probe.size()) +
                         " fresh matrices)",
                     TablePrinter::pct(ml::accuracy(t2, pred), 1),
                     "100% (x" + std::to_string(kNumFormats) + " partial runs)"});
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nExpected shapes: the analytical model trails ML by a wide margin\n"
      "(no learned interactions, no locality); confidence gating buys a\n"
      "few points for a small execution budget (SMAT's trade); sampling\n"
      "probes are accurate but cost %d partial SpMV runs per matrix.\n",
      kNumFormats);
  return 0;
}
