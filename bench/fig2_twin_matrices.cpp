// Reproduces Fig. 2: two matrices with nearly identical macro statistics
// (~6.5M nnz, ~half-million square) but different CSR5 / merge-CSR
// GFLOPS — rgg_n_2_19_s0 (random geometric graph) vs auto (FEM mesh).
#include <cstdio>

#include "bench_util.hpp"
#include "gpusim/oracle.hpp"
#include "gpusim/row_summary.hpp"
#include "synth/generators.hpp"

using namespace spmvml;

int main() {
  bench::banner("Fig. 2 — twin matrices, different CSR5/merge performance",
                "Nisa et al. 2018, Fig. 2 (rgg_n_2_19_s0 vs auto)");

  // rgg_n_2_19_s0: 524K-node random geometric graph, ~6.5M nnz (mu ~12.5).
  GenSpec rgg;
  rgg.family = MatrixFamily::kGeomGraph;
  rgg.rows = 524'288;
  rgg.cols = rgg.rows;
  rgg.row_mu = 12.5;
  rgg.seed = 219;

  // auto: 449K-row 3D FEM mesh, ~6.6M nnz (mu ~14.7). A 3D mesh flattened
  // to 1D keeps only loose banding (wide band), unlike rgg's geometric
  // vertex order.
  GenSpec fem;
  fem.family = MatrixFamily::kBanded;
  fem.rows = 448'695;
  fem.cols = fem.rows;
  fem.row_mu = 14.7;
  fem.band_frac = 0.08;
  fem.seed = 449;

  const MeasurementOracle oracle(tesla_k40c(), Precision::kSingle);

  TablePrinter table({"matrix", "rows", "nnz", "CSR5 GFLOPS (paper)",
                      "merge GFLOPS (paper)"});
  struct Case {
    const char* name;
    GenSpec spec;
    double paper_csr5, paper_merge;
  };
  for (const Case& c : {Case{"rgg_n_2_19_s0 (geom)", rgg, 22.0, 21.0},
                        Case{"auto (FEM banded)", fem, 18.0, 15.0}}) {
    const auto m = generate(c.spec);
    const auto s = summarize(m);
    const auto csr5 = oracle.measure(s, Format::kCsr5, c.spec.seed);
    const auto merge = oracle.measure(s, Format::kMergeCsr, c.spec.seed);
    table.add_row({c.name, std::to_string(m.rows()),
                   std::to_string(m.nnz()),
                   TablePrinter::fmt(csr5.gflops, 1) + " (" +
                       TablePrinter::fmt(c.paper_csr5, 0) + ")",
                   TablePrinter::fmt(merge.gflops, 1) + " (" +
                       TablePrinter::fmt(c.paper_merge, 0) + ")"});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nShape to reproduce: similar nnz/rows, yet measurably different\n"
      "GFLOPS (the geometric graph's sorted vertices give it better\n"
      "x-vector locality than the wide-band 3D mesh), and CSR5 >= merge\n"
      "on both, as in the paper.\n");
  return 0;
}
