// Reproduces Table X: classification accuracy over the seven formats using
// only the top-7 ("imp.") features by XGBoost importance — accuracy must
// match or beat the 11/17-feature tables.
#include <algorithm>

#include "classify_tables.hpp"
#include "ml/gbt.hpp"

using namespace spmvml;
using namespace spmvml::bench;

int main() {
  banner("Table X preamble — deriving the imp. features from importance",
         "Nisa et al. 2018, §V-D");
  // Derive the top-7 from a full-feature XGBoost fit (K80c double) and
  // compare to the fixed list the studies use.
  const auto study = make_classification_study(
      corpus(), 0, Precision::kDouble, kAllFormats, FeatureSet::kSet123);
  ml::GbtParams params;
  params.n_estimators = fast() ? 40 : 150;
  ml::GbtClassifier gbt(params);
  gbt.fit(study.data.x, study.data.labels);
  auto importance = gbt.feature_importance_weight();
  std::vector<int> order(importance.size());
  for (std::size_t i = 0; i < order.size(); ++i)
    order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return importance[static_cast<std::size_t>(a)] >
                                       importance[static_cast<std::size_t>(b)]; });
  std::printf("Top-7 by split-count importance (K80c double): ");
  for (int i = 0; i < 7; ++i) std::printf("%s ", feature_name(order[static_cast<std::size_t>(i)]));
  std::printf("\nFixed imp. set used below:                    ");
  for (int id : feature_set_indices(FeatureSet::kImportant))
    std::printf("%s ", feature_name(id));
  std::printf("\n");

  run_classification_table(
      "Table X — 7 formats, top-7 (imp.) features",
      "Nisa et al. 2018, Table X", kAllFormats, FeatureSet::kImportant,
      false,
      {{{79, 85, 83, 85}}, {{83, 87, 86, 88}},
       {{77, 83, 83, 84}}, {{79, 84, 85, 86}}});

  std::printf(
      "\nShape to reproduce: 7 features match the best 11/17-feature\n"
      "accuracy — the importance ranking captures what matters.\n");
  return 0;
}
