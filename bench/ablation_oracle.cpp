// Ablation of the simulator design choices called out in DESIGN.md §6:
//  1. measurement noise sigma — how label noise degrades accuracy;
//  2. the column-locality gather channel — without it the 17 features
//     nearly determine the label and classifiers saturate;
//  3. log-time vs linear-time regression targets.
// Runs on a reduced corpus (ablation needs fresh label collection per
// configuration, so the full 2300-matrix corpus would be wasteful).
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "ml/gbt.hpp"

using namespace spmvml;
using namespace spmvml::bench;

namespace {

LabeledCorpus collect_with(const CorpusPlan& plan, double sys_sigma,
                           bool locality) {
  CollectOptions options;
  options.measurement.systematic_sigma = sys_sigma;
  if (!locality) {
    // Force a constant gather miss rate: the oracle no longer depends on
    // column structure beyond the 17 features.
    options.cost.min_miss = 0.3;
    options.cost.band_hit_bonus = 0.0;
    options.cost.l2_reuse_boost = 0.0;
    options.cost.gather_line_bytes = 32.0;
    options.cost.texture_gather_factor = 1.0;
  }
  return collect_corpus(plan, options);
}

double xgb_accuracy(const LabeledCorpus& corpus) {
  const auto study = make_classification_study(
      corpus, /*arch=*/1, Precision::kDouble, kAllFormats,
      FeatureSet::kSet123);
  return classify_accuracy(study, ModelKind::kXgboost, 5);
}

}  // namespace

int main() {
  banner("Ablation — oracle noise, locality channel, regression target",
         "DESIGN.md §6 (supporting experiment; no direct paper analogue)");

  const double scale = fast() ? 0.05 : 0.2;
  const auto plan = make_corpus_plan(scale, root_seed() + 99);
  std::printf("ablation corpus: %zu matrices\n\n", plan.size());

  // 1. Noise sweep.
  TablePrinter noise_table({"systematic sigma", "XGBoost accuracy (P100 dbl)"});
  for (double sigma : {0.0, 0.008, 0.03, 0.08, 0.2}) {
    const auto corpus = collect_with(plan, sigma, true);
    noise_table.add_row({TablePrinter::pct(sigma, 1),
                         TablePrinter::pct(xgb_accuracy(corpus), 1)});
    std::printf("  noise sigma %.3f done\n", sigma);
    std::fflush(stdout);
  }
  std::printf("\n1. Measurement-noise sweep:\n%s",
              noise_table.to_string().c_str());

  // 2. Locality channel on/off.
  TablePrinter loc_table({"locality channel", "XGBoost accuracy (P100 dbl)"});
  for (bool locality : {true, false}) {
    const auto corpus = collect_with(plan, 0.008, locality);
    loc_table.add_row({locality ? "on (default)" : "off (constant miss)",
                       TablePrinter::pct(xgb_accuracy(corpus), 1)});
  }
  std::printf("\n2. Column-locality channel (features cannot see it):\n%s",
              loc_table.to_string().c_str());

  // 3. Regression target: log10(time) vs linear seconds.
  const auto corpus = collect_with(plan, 0.008, true);
  const auto study = make_joint_regression_study(
      corpus, 1, Precision::kDouble, kAllFormats, FeatureSet::kSet123);
  const auto [train_idx, test_idx] = ml::split_indices(study.data, 0.2, 5);
  auto rme_for = [&](bool log_target) {
    ml::GbtParams params;
    params.n_estimators = fast() ? 40 : 200;
    ml::GbtRegressor model(params);
    ml::Matrix x;
    std::vector<double> y;
    for (std::size_t i : train_idx) {
      x.push_back(study.data.x[i]);
      y.push_back(log_target ? study.data.targets[i] : study.seconds[i]);
    }
    model.fit(x, y);
    std::vector<double> measured, predicted;
    for (std::size_t i : test_idx) {
      measured.push_back(study.seconds[i]);
      const double raw = model.predict(study.data.x[i]);
      predicted.push_back(
          log_target ? regression_target_to_seconds(raw)
                     : std::max(raw, 1e-12));
    }
    return ml::relative_mean_error(measured, predicted);
  };
  TablePrinter target_table({"regression target", "XGBoost joint RME"});
  target_table.add_row({"log10(seconds) (default)",
                        TablePrinter::pct(rme_for(true), 1)});
  target_table.add_row({"linear seconds", TablePrinter::pct(rme_for(false), 1)});
  std::printf("\n3. Regression-target transform:\n%s",
              target_table.to_string().c_str());

  std::printf(
      "\nExpected: accuracy degrades monotonically with noise; switching\n"
      "the locality channel off inflates accuracy (the task becomes too\n"
      "easy); the log target beats linear RME by a wide margin because\n"
      "times span five decades.\n");
  return 0;
}
