// Reproduces Table I: population statistics of the (synthetic) SuiteSparse
// corpus per nnz bucket — matrix counts, average rows/cols, density,
// nnz-per-row mean and standard deviation — side by side with the paper's
// published numbers.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "features/features.hpp"

using namespace spmvml;

int main() {
  bench::banner("Table I — corpus population statistics per nnz bucket",
                "Nisa et al. 2018, Table I (SuiteSparse feature analysis)");

  const auto& corpus = bench::corpus();
  const auto buckets = paper_buckets();

  struct Agg {
    int count = 0;
    StreamingStats rows, cols, density, mu, sigma;
  };
  std::vector<Agg> agg(buckets.size());
  for (const auto& rec : corpus.records) {
    auto& a = agg[static_cast<std::size_t>(rec.bucket)];
    ++a.count;
    a.rows.add(rec.rows);
    a.cols.add(rec.cols);
    a.density.add(rec.features[kNnzFrac]);
    a.mu.add(rec.features[kNnzMu]);
    a.sigma.add(rec.features[kNnzSigma]);
  }

  TablePrinter table({"nnz range", "count (paper)", "avg rows (paper)",
                      "avg cols (paper)", "avg density% (paper)",
                      "avg nnz_mu (paper)", "avg nnz_sigma (paper)"});
  auto cell = [](double ours, double paper, int digits) {
    return TablePrinter::fmt(ours, digits) + " (" +
           TablePrinter::fmt(paper, digits) + ")";
  };
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const auto& bucket = buckets[b];
    const auto& a = agg[b];
    table.add_row({bucket.label,
                   std::to_string(a.count) + " (" +
                       std::to_string(bucket.paper_count) + ")",
                   cell(a.rows.mean(), bucket.paper_avg_rows, 0),
                   cell(a.cols.mean(), bucket.paper_avg_cols, 0),
                   cell(a.density.mean(), bucket.paper_avg_density, 2),
                   cell(a.mu.mean(), bucket.paper_nnz_mu, 0),
                   cell(a.sigma.mean(), bucket.paper_nnz_sigma, 0)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nNote: nnz ranges of the top three buckets are compressed (see\n"
      "DESIGN.md §2), so their avg rows/cols are proportionally smaller\n"
      "than the paper's; counts, density trend and nnz_mu are matched.\n");
  return 0;
}
